package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, d int, scale float32) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// TestQuantizeDequantizeRoundTrip is the PR's quantization property test:
// every component of a dequantized row is within half a scale step of the
// original, across magnitudes, signs, and degenerate rows.
func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]float32, 0)
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(200)
		mag := float32(math.Pow(10, float64(rng.Intn(7)-3)))
		v := randVec(rng, d, mag)
		switch trial % 10 {
		case 0: // all zero
			for i := range v {
				v[i] = 0
			}
		case 1: // single spike
			for i := range v {
				v[i] = 0
			}
			v[rng.Intn(d)] = mag
		}
		qm := NewQuantMatrix(d)
		row := qm.Append(v)
		if cap(buf) < d {
			buf = make([]float32, d)
		}
		out := buf[:d]
		qm.DequantizeRow(row, out)
		bound := qm.Scale(row) / 2 * (1 + 1e-5)
		for i := range v {
			if err := float32(math.Abs(float64(v[i] - out[i]))); err > bound {
				t.Fatalf("trial %d dim %d: |%v - %v| = %v exceeds scale bound %v",
					trial, i, v[i], out[i], err, bound)
			}
		}
	}
}

// TestQuantizeSnappedIsFixedPoint pins the property the snapped key plane
// relies on: quantizing an already-dequantized row reproduces the same
// codes and scale, so re-importing a stored (snapped) context drifts
// nothing.
func TestQuantizeSnappedIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		d := 1 + rng.Intn(128)
		v := randVec(rng, d, 3)
		qm := NewQuantMatrix(d)
		qm.Append(v)
		snapped := make([]float32, d)
		qm.DequantizeRow(0, snapped)

		again := NewQuantMatrix(d)
		again.Append(snapped)
		resnapped := make([]float32, d)
		again.DequantizeRow(0, resnapped)
		for i := range snapped {
			if snapped[i] != resnapped[i] {
				t.Fatalf("trial %d dim %d: snapped %v re-snapped to %v", trial, i, snapped[i], resnapped[i])
			}
		}
	}
}

// TestFusedScoreErrorBound checks that the fused int8 score is within
// DotErrBound of the exact fp32 dot against the dequantized plane — the
// inequality that justifies the β widening in DIPRS.
func TestFusedScoreErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d = 96
	qm := NewQuantMatrix(d)
	deq := NewMatrix(0, d)
	row := make([]float32, d)
	for i := 0; i < 300; i++ {
		v := randVec(rng, d, float32(math.Pow(4, float64(rng.Intn(4)-2))))
		r := qm.Append(v)
		qm.DequantizeRow(r, row)
		deq.Append(row)
	}
	var qq QueryQ8
	scores := make([]float32, qm.Rows())
	exact := make([]float32, qm.Rows())
	for trial := 0; trial < 50; trial++ {
		q := randVec(rng, d, 2)
		qq.Quantize(q)
		DotBatchQ8(&qq, qm, scores)
		DotBatch(q, deq, exact)
		uniform := qm.DotErrBound(&qq)
		for i := range scores {
			err := math.Abs(float64(scores[i] - exact[i]))
			if rowBound := qm.ErrBoundRow(&qq, i); err > float64(rowBound) {
				t.Fatalf("trial %d row %d: |%v - %v| = %v exceeds row bound %v",
					trial, i, scores[i], exact[i], err, rowBound)
			}
			if err > float64(uniform) {
				t.Fatalf("trial %d row %d: error %v exceeds uniform bound %v", trial, i, err, uniform)
			}
		}
	}
}

// TestQ8KernelsAgree pins the batch, gather, and single-row kernels to the
// same fused formulation.
func TestQ8KernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const d, n = 33, 41 // off block boundaries on purpose
	qm := NewQuantMatrix(d)
	for i := 0; i < n; i++ {
		qm.Append(randVec(rng, d, 2))
	}
	var qq QueryQ8
	qq.Quantize(randVec(rng, d, 1))

	batch := make([]float32, n)
	DotBatchQ8(&qq, qm, batch)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (i * 7) % n
	}
	gather := make([]float32, n)
	DotGatherQ8(&qq, qm, idx, gather)
	for j, i := range idx {
		if gather[j] != batch[i] {
			t.Fatalf("gather[%d] (row %d) = %v, batch = %v", j, i, gather[j], batch[i])
		}
		if s := qm.ScoreQ8(&qq, i); s != batch[i] {
			t.Fatalf("ScoreQ8(%d) = %v, batch = %v", i, s, batch[i])
		}
	}

	// Range kernel over a sub-span matches the full batch.
	lo, hi := 5, 38
	ranged := make([]float32, hi-lo)
	DotBatchQ8Range(&qq, qm, lo, hi, ranged)
	for i := range ranged {
		if ranged[i] != batch[lo+i] {
			t.Fatalf("range[%d] = %v, batch[%d] = %v", i, ranged[i], lo+i, batch[lo+i])
		}
	}
}

// TestDotQ8WMatchesGeneric pins the platform dotQ8W kernel (SSE2 on amd64)
// to the portable reference across lengths that exercise every tail case,
// including negative codes in each lane.
func TestDotQ8WMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 64, 127, 128, 333} {
		q := make([]int16, n)
		k := make([]int8, n)
		for i := range q {
			c := int8(rng.Intn(255) - 127)
			q[i] = int16(c)
			k[i] = int8(rng.Intn(255) - 127)
		}
		want := dotQ8WGeneric(q, k)
		if got := dotQ8W(q, k); got != want {
			t.Fatalf("n=%d: dotQ8W = %d, generic = %d", n, got, want)
		}
	}
}

// TestPackUnpackCodes round-trips code rows through the packed float32-word
// spill representation, including widths that pad the final word.
func TestPackUnpackCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 64, 127, 128} {
		qm := NewQuantMatrix(d)
		qm.Append(randVec(rng, d, 5))
		words := make([]float32, PackedWords(d))
		qm.PackRow(0, words)
		got := make([]int8, d)
		UnpackCodes(words, got)
		want := qm.RowCodes(0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("d=%d code %d: packed round trip %d != %d", d, i, got[i], want[i])
			}
		}
	}
}

// TestQuantTruncateClone covers the maintenance paths kvcache uses.
func TestQuantTruncateClone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d = 16
	qm := NewQuantMatrix(d)
	var biggest float32
	for i := 0; i < 10; i++ {
		scale := float32(i + 1)
		if i < 5 && scale > biggest {
			biggest = scale
		}
		qm.Append(randVec(rng, d, scale))
	}
	cl := qm.Clone()
	qm.Truncate(5)
	if qm.Rows() != 5 {
		t.Fatalf("truncate left %d rows", qm.Rows())
	}
	if qm.maxScale > biggest/qMax*1.01 {
		t.Fatalf("maxScale %v not recomputed after truncate (limit %v)", qm.maxScale, biggest/qMax)
	}
	if cl.Rows() != 10 {
		t.Fatalf("clone shrank to %d rows with the original", cl.Rows())
	}
	// AppendCodes reproduces a row bit-exactly, L1 and all.
	qm2 := NewQuantMatrix(d)
	qm2.AppendCodes(cl.RowCodes(7), cl.Scale(7))
	if qm2.l1[0] != cl.l1[7] || qm2.Scale(0) != cl.Scale(7) {
		t.Fatalf("AppendCodes metadata mismatch: %v/%v vs %v/%v",
			qm2.l1[0], qm2.Scale(0), cl.l1[7], cl.Scale(7))
	}
}

func BenchmarkDotF32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const d, n = 128, 2048
	m := NewMatrix(0, d)
	for i := 0; i < n; i++ {
		m.Append(randVec(rng, d, 1))
	}
	q := randVec(rng, d, 1)
	out := make([]float32, n)
	b.SetBytes(int64(n) * d * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotBatch(q, m, out)
	}
}

func BenchmarkDotQ8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const d, n = 128, 2048
	qm := NewQuantMatrix(d)
	for i := 0; i < n; i++ {
		qm.Append(randVec(rng, d, 1))
	}
	var qq QueryQ8
	qq.Quantize(randVec(rng, d, 1))
	out := make([]float32, n)
	b.SetBytes(int64(n) * d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotBatchQ8(&qq, qm, out)
	}
}

// TestQuantMatrixSlice: a slice view shares codes and scales with its
// parent (same rows score identically) while its error bound tightens to
// the worst row inside the range — the property the per-shard quant planes
// of a range-sharded context rely on.
func TestQuantMatrixSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n, d = 200, 24
	qm := NewQuantMatrix(d)
	for i := 0; i < n; i++ {
		// Spread magnitudes so per-range maxima genuinely differ.
		qm.Append(randVec(rng, d, float32(1+i%17)))
	}
	var qq QueryQ8
	qq.Quantize(randVec(rng, d, 1))

	for _, r := range [][2]int{{0, n}, {0, 50}, {50, 125}, {125, n}, {70, 71}, {60, 60}} {
		lo, hi := r[0], r[1]
		sl := qm.Slice(lo, hi)
		if sl.Rows() != hi-lo || sl.Cols() != d {
			t.Fatalf("slice [%d,%d): %dx%d", lo, hi, sl.Rows(), sl.Cols())
		}
		for i := 0; i < sl.Rows(); i++ {
			if got, want := sl.ScoreQ8(&qq, i), qm.ScoreQ8(&qq, lo+i); got != want {
				t.Fatalf("slice [%d,%d) row %d scores %v, parent row %d scores %v", lo, hi, i, got, lo+i, want)
			}
			if sl.Scale(i) != qm.Scale(lo+i) {
				t.Fatalf("slice [%d,%d) row %d scale diverges", lo, hi, i)
			}
		}
		if sl.Rows() > 0 {
			// The view's bound is the max over its own rows: no looser than
			// the tightest per-row bound, no tighter than the loosest.
			bound := sl.DotErrBound(&qq)
			var worst float32
			for i := 0; i < sl.Rows(); i++ {
				if b := sl.ErrBoundRow(&qq, i); b > worst {
					worst = b
				}
			}
			if bound < worst {
				t.Fatalf("slice [%d,%d): bound %v below worst row bound %v", lo, hi, bound, worst)
			}
			if full := qm.DotErrBound(&qq); bound > full {
				t.Fatalf("slice [%d,%d): bound %v looser than full-matrix bound %v", lo, hi, bound, full)
			}
		}
	}

	// Batch scoring over the slice matches the parent's range scoring.
	sl := qm.Slice(40, 160)
	got := make([]float32, sl.Rows())
	want := make([]float32, n)
	DotBatchQ8(&qq, sl, got)
	DotBatchQ8Range(&qq, qm, 40, 160, want[40:160])
	for i := range got {
		if got[i] != want[40+i] {
			t.Fatalf("batch row %d: slice %v vs parent %v", i, got[i], want[40+i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	qm.Slice(10, n+1)
}
