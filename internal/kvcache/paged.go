package kvcache

import (
	"fmt"

	"repro/internal/vec"
)

// PagedCache is the paged KV layout used by coupled-architecture inference
// engines (vLLM's PagedAttention [42]): tokens live in fixed-size pages
// allocated from a shared pool, with a per-(layer, head) page table mapping
// logical positions to pages. It exists as the memory model of the
// coupled baseline the paper's §3 analyses — page-granular allocation
// bounds fragmentation but keeps the whole context resident on device,
// which is exactly the consumption AlayaDB's decoupling avoids.
//
// PagedCache is not safe for concurrent mutation.
type PagedCache struct {
	layers   int
	kvHeads  int
	headDim  int
	pageSize int // tokens per page

	// pool is the shared page pool; each page holds keys then values
	// contiguously: pageSize rows of keys, then pageSize rows of values.
	pool     []*vec.Matrix
	freelist []int

	// tables maps (layer*kvHeads+head) to its ordered page list.
	tables [][]int
	length []int // tokens stored per (layer, head)
}

// NewPaged returns an empty paged cache.
func NewPaged(layers, kvHeads, headDim, pageSize int) *PagedCache {
	if layers <= 0 || kvHeads <= 0 || headDim <= 0 || pageSize <= 0 {
		panic(fmt.Sprintf("kvcache: invalid paged shape %d/%d/%d/%d", layers, kvHeads, headDim, pageSize))
	}
	return &PagedCache{
		layers:   layers,
		kvHeads:  kvHeads,
		headDim:  headDim,
		pageSize: pageSize,
		tables:   make([][]int, layers*kvHeads),
		length:   make([]int, layers*kvHeads),
	}
}

func (c *PagedCache) idx(layer, head int) int {
	if layer < 0 || layer >= c.layers || head < 0 || head >= c.kvHeads {
		panic(fmt.Sprintf("kvcache: paged (layer=%d, head=%d) out of range", layer, head))
	}
	return layer*c.kvHeads + head
}

// allocPage takes a page from the freelist or grows the pool.
func (c *PagedCache) allocPage() int {
	if n := len(c.freelist); n > 0 {
		id := c.freelist[n-1]
		c.freelist = c.freelist[:n-1]
		return id
	}
	c.pool = append(c.pool, vec.NewMatrix(2*c.pageSize, c.headDim))
	return len(c.pool) - 1
}

// Append adds one token's key and value for (layer, head), allocating a
// page when the current one fills. Returns the token's position.
func (c *PagedCache) Append(layer, head int, k, v []float32) int {
	if len(k) != c.headDim || len(v) != c.headDim {
		panic(fmt.Sprintf("kvcache: paged append dim %d/%d, want %d", len(k), len(v), c.headDim))
	}
	i := c.idx(layer, head)
	pos := c.length[i]
	slot := pos % c.pageSize
	if slot == 0 {
		c.tables[i] = append(c.tables[i], c.allocPage())
	}
	page := c.pool[c.tables[i][pos/c.pageSize]]
	page.SetRow(slot, k)
	page.SetRow(c.pageSize+slot, v)
	c.length[i] = pos + 1
	return pos
}

// Key returns the key vector at position pos (aliasing page storage).
func (c *PagedCache) Key(layer, head, pos int) []float32 {
	i := c.idx(layer, head)
	if pos < 0 || pos >= c.length[i] {
		panic(fmt.Sprintf("kvcache: paged key %d out of range [0,%d)", pos, c.length[i]))
	}
	return c.pool[c.tables[i][pos/c.pageSize]].Row(pos % c.pageSize)
}

// Value returns the value vector at position pos (aliasing page storage).
func (c *PagedCache) Value(layer, head, pos int) []float32 {
	i := c.idx(layer, head)
	if pos < 0 || pos >= c.length[i] {
		panic(fmt.Sprintf("kvcache: paged value %d out of range [0,%d)", pos, c.length[i]))
	}
	return c.pool[c.tables[i][pos/c.pageSize]].Row(c.pageSize + pos%c.pageSize)
}

// SeqLen returns the tokens stored for (layer, head 0).
func (c *PagedCache) SeqLen(layer int) int { return c.length[c.idx(layer, 0)] }

// Gather materializes contiguous key and value matrices for (layer, head),
// e.g. to hand a page-fragmented context to an index build.
func (c *PagedCache) Gather(layer, head int) (keys, values *vec.Matrix) {
	i := c.idx(layer, head)
	n := c.length[i]
	keys = vec.NewMatrix(n, c.headDim)
	values = vec.NewMatrix(n, c.headDim)
	for pos := 0; pos < n; pos++ {
		keys.SetRow(pos, c.Key(layer, head, pos))
		values.SetRow(pos, c.Value(layer, head, pos))
	}
	return keys, values
}

// Truncate drops tokens at position >= n for (layer, head), returning
// fully freed pages to the pool.
func (c *PagedCache) Truncate(layer, head, n int) {
	i := c.idx(layer, head)
	if n >= c.length[i] {
		return
	}
	if n < 0 {
		n = 0
	}
	needPages := (n + c.pageSize - 1) / c.pageSize
	for _, page := range c.tables[i][needPages:] {
		c.freelist = append(c.freelist, page)
	}
	c.tables[i] = c.tables[i][:needPages]
	c.length[i] = n
}

// Stats reports the pool's utilisation: the fragmentation PagedAttention
// bounds to under one page per sequence.
type PagedStats struct {
	Pages      int   // allocated pages (pool size)
	FreePages  int   // pages in the freelist
	Tokens     int   // live tokens across all heads
	PoolBytes  int64 // total pool footprint
	WasteBytes int64 // allocated-but-unused bytes in partially filled pages
}

// Stats returns current pool statistics.
func (c *PagedCache) Stats() PagedStats {
	perPageBytes := int64(2*c.pageSize) * int64(c.headDim) * 4
	st := PagedStats{
		Pages:     len(c.pool),
		FreePages: len(c.freelist),
		PoolBytes: int64(len(c.pool)) * perPageBytes,
	}
	for i, table := range c.tables {
		st.Tokens += c.length[i]
		if len(table) > 0 {
			lastUsed := c.length[i] - (len(table)-1)*c.pageSize
			st.WasteBytes += int64(c.pageSize-lastUsed) * int64(c.headDim) * 4 * 2
		}
	}
	st.WasteBytes += int64(len(c.freelist)) * perPageBytes
	return st
}
