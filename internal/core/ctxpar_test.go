package core

import (
	"path/filepath"
	"testing"

	"repro/internal/attention"
	"repro/internal/devmem"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/query"
	"repro/internal/workload"
)

// ctxparDB builds a DB whose device budget forces DIPR plans, with the
// given layer count, sharding geometry, and key plane. layers=1 makes
// every DIPR plan IndexFlat (the optimizer's layer-0 rule), which is the
// bitwise-comparable decode path; layers=2 adds IndexFine graph probes.
func ctxparDB(t testing.TB, layers, shardRows int, quant bool) *DB {
	t.Helper()
	cfg := model.Default()
	cfg.Layers = layers
	cfg.QHeads = 4
	cfg.KVHeads = 2
	cfg.Vocab = 32
	m := model.New(cfg)
	win := attention.Window{Sinks: 4, Recent: 16}
	winBytes := int64(win.Sinks+win.Recent) * int64(cfg.Layers) * int64(cfg.KVHeads) * int64(cfg.HeadDim) * 4 * 2
	dev := devmem.New(m.WeightsBytes() + 2*winBytes + 4096)
	db, err := New(Config{
		Model:         m,
		Device:        dev,
		Window:        win,
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       1,
		Pool:          pool.New(4),
		QuantKeys:     quant,
		CtxShardRows:  shardRows,
		CtxShardMax:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func ctxparQueries(db *DB, doc *model.Document, topics []int) [][][]float32 {
	mc := db.Model().Config()
	qs := make([][][]float32, mc.Layers)
	for l := range qs {
		qs[l] = make([][]float32, mc.QHeads)
		for h := range qs[l] {
			qs[l][h] = db.Model().QueryVector(doc, l, h, model.QuerySpec{
				FocusTopics: topics, ContextLen: doc.Len()})
		}
	}
	return qs
}

// TestShardedFlatDecodeBitwise is the PR's identity criterion: a sharded
// flat-scan decode must be bit-for-bit the unsharded decode — outputs,
// retrieved counts, and (quant) rerank volume — because the per-shard fill
// is a reordering of independent writes feeding the same serial band
// selection. Covered with the SQ8 plane both off and on.
func TestShardedFlatDecodeBitwise(t *testing.T) {
	for _, quant := range []bool{false, true} {
		mono := ctxparDB(t, 1, 0, quant)
		shard := ctxparDB(t, 1, 128, quant)

		prof, _ := workload.ProfileByName("Retr.P")
		inst := workload.Generate(prof, 9, 1024, 64, 32)
		if _, err := mono.ImportDoc(inst.Doc); err != nil {
			t.Fatal(err)
		}
		if _, err := shard.ImportDoc(inst.Doc); err != nil {
			t.Fatal(err)
		}
		if st := shard.CtxParStats(); st.ShardedBuilds != 1 || st.ShardsBuilt != 8 {
			t.Fatalf("quant=%v: sharded build not recorded: %+v", quant, st)
		}
		if st := mono.CtxParStats(); st.ShardedBuilds != 0 || st.IndexBuilds != 1 {
			t.Fatalf("quant=%v: unsharded build miscounted: %+v", quant, st)
		}

		ms, _ := mono.CreateSession(inst.Doc)
		ss, _ := shard.CreateSession(inst.Doc)
		qs := ctxparQueries(mono, inst.Doc, inst.Question)
		mc := mono.Model().Config()
		for h := 0; h < mc.QHeads; h++ {
			want := ms.Attention(0, h, qs[0][h])
			got := ss.Attention(0, h, qs[0][h])
			if want.Plan.Query != query.KindDIPR || want.Plan.Index != query.IndexFlat {
				t.Fatalf("quant=%v head %d: fixture planned %+v, want flat DIPR", quant, h, want.Plan)
			}
			if got.Plan != want.Plan {
				t.Fatalf("quant=%v head %d: plans diverge: %+v vs %+v", quant, h, got.Plan, want.Plan)
			}
			if got.Retrieved != want.Retrieved {
				t.Fatalf("quant=%v head %d: retrieved %d vs %d", quant, h, got.Retrieved, want.Retrieved)
			}
			for j := range want.Output {
				if got.Output[j] != want.Output[j] {
					t.Fatalf("quant=%v head %d dim %d: %v != %v (not bitwise)",
						quant, h, j, got.Output[j], want.Output[j])
				}
			}
		}
		if st := shard.CtxParStats(); st.ShardedProbes == 0 || st.ShardsPerProbe() != 8 {
			t.Fatalf("quant=%v: sharded probes not recorded: %+v", quant, st)
		}
		mst, sst := ms.Stats(), ss.Stats()
		if mst.Reranked != sst.Reranked {
			t.Fatalf("quant=%v: reranked %d vs %d", quant, sst.Reranked, mst.Reranked)
		}
		ms.Close()
		ss.Close()
	}
}

// TestShardedPersistRoundTrip saves a sharded context (per-shard graph
// files, adjacency-free keys files) and reloads it in a fresh DB: shard
// geometry, KV planes, and every shard graph must round-trip exactly, and
// a decode on the reloaded context must match the original bitwise — the
// IndexFine layers too, since both DBs probe identical shard graphs.
func TestShardedPersistRoundTrip(t *testing.T) {
	for _, quant := range []bool{false, true} {
		db := ctxparDB(t, 2, 128, quant)
		prof, _ := workload.ProfileByName("Retr.P")
		inst := workload.Generate(prof, 11, 1024, 64, 32)
		ctx, err := db.ImportDoc(inst.Doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(ctx.shards) != 8 {
			t.Fatalf("quant=%v: fixture built %d shards, want 8", quant, len(ctx.shards))
		}
		dir := filepath.Join(t.TempDir(), "ctx")
		if err := db.SaveContext(ctx, dir); err != nil {
			t.Fatal(err)
		}

		db2 := ctxparDB(t, 2, 128, quant)
		loaded, err := db2.LoadContext(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(loaded.shards) != len(ctx.shards) {
			t.Fatalf("quant=%v: loaded %d shards, want %d", quant, len(loaded.shards), len(ctx.shards))
		}
		for i := range ctx.shards {
			if loaded.shards[i] != ctx.shards[i] {
				t.Fatalf("quant=%v: shard %d span %+v != %+v", quant, i, loaded.shards[i], ctx.shards[i])
			}
		}
		if len(loaded.graphs) != len(ctx.graphs) {
			t.Fatalf("quant=%v: graph count %d != %d", quant, len(loaded.graphs), len(ctx.graphs))
		}
		for gi := range ctx.graphs {
			a, b := ctx.graphs[gi], loaded.graphs[gi]
			if (a == nil) != (b == nil) {
				t.Fatalf("quant=%v: graph %d nil mismatch", quant, gi)
			}
			if a == nil {
				continue
			}
			if a.Entry() != b.Entry() || a.Len() != b.Len() {
				t.Fatalf("quant=%v: graph %d shape (%d,%d) != (%d,%d)",
					quant, gi, b.Len(), b.Entry(), a.Len(), a.Entry())
			}
			aAdj, bAdj := adjacencyOf(a), adjacencyOf(b)
			for u := range aAdj {
				if len(aAdj[u]) != len(bAdj[u]) {
					t.Fatalf("quant=%v: graph %d node %d degree differs", quant, gi, u)
				}
				for k := range aAdj[u] {
					if aAdj[u][k] != bAdj[u][k] {
						t.Fatalf("quant=%v: graph %d node %d neighbour %d differs", quant, gi, u, k)
					}
				}
			}
		}

		origSess, _ := db.CreateSession(inst.Doc)
		loadSess, reused := db2.CreateSession(inst.Doc)
		if reused != inst.Doc.Len() {
			t.Fatalf("quant=%v: reused %d of %d", quant, reused, inst.Doc.Len())
		}
		qs := ctxparQueries(db, inst.Doc, inst.Question)
		mc := db.Model().Config()
		for l := 0; l < mc.Layers; l++ {
			for h := 0; h < mc.QHeads; h++ {
				want := origSess.Attention(l, h, qs[l][h])
				got := loadSess.Attention(l, h, qs[l][h])
				if got.Plan != want.Plan || got.Retrieved != want.Retrieved {
					t.Fatalf("quant=%v L%dH%d: plan/retrieved diverge: %+v/%d vs %+v/%d",
						quant, l, h, got.Plan, got.Retrieved, want.Plan, want.Retrieved)
				}
				for j := range want.Output {
					if got.Output[j] != want.Output[j] {
						t.Fatalf("quant=%v L%dH%d dim %d: %v != %v after reload",
							quant, l, h, j, got.Output[j], want.Output[j])
					}
				}
			}
		}
		origSess.Close()
		loadSess.Close()
	}
}

// TestShardedEvictSpillReloadBitwise drives the sharded layout through the
// spill tier: import, decode, evict to disk, transparently reload via
// CreateSession, decode again — outputs must be bitwise stable across the
// round trip (quant plane on, the layout with the most moving parts).
func TestShardedEvictSpillReloadBitwise(t *testing.T) {
	cfg := model.Default()
	cfg.Layers = 2
	cfg.QHeads = 4
	cfg.KVHeads = 2
	cfg.Vocab = 32
	m := model.New(cfg)
	win := attention.Window{Sinks: 4, Recent: 16}
	winBytes := int64(win.Sinks+win.Recent) * int64(cfg.Layers) * int64(cfg.KVHeads) * int64(cfg.HeadDim) * 4 * 2
	dev := devmem.New(m.WeightsBytes() + 2*winBytes + 4096)
	doc := model.NewFiller(31, 1024, 64, 32)
	doc.Plant(512, 200, 9, 1)
	db, err := New(Config{
		Model:         m,
		Device:        dev,
		Window:        win,
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       1,
		Pool:          pool.New(4),
		QuantKeys:     true,
		CtxShardRows:  128,
		CtxShardMax:   8,
		// Budget fits one resident context: the filler import evicts doc.
		ContextBudget: 3 * 1024 * int64(cfg.Layers) * int64(cfg.KVHeads) * int64(cfg.HeadDim) * 4,
		SpillDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.ImportDoc(doc); err != nil {
		t.Fatal(err)
	}
	qs := ctxparQueries(db, doc, []int{200})
	sess, _ := db.CreateSession(doc)
	mc := db.Model().Config()
	before := make([][][]float32, mc.Layers)
	for l := 0; l < mc.Layers; l++ {
		before[l] = make([][]float32, mc.QHeads)
		for h := 0; h < mc.QHeads; h++ {
			res := sess.Attention(l, h, qs[l][h])
			before[l][h] = append([]float32(nil), res.Output...)
		}
	}
	sess.Close()

	filler := model.NewFiller(32, 900, 64, 32)
	if _, err := db.ImportDoc(filler); err != nil {
		t.Fatal(err)
	}
	if db.TierStats().SpilledContexts == 0 {
		t.Fatal("fixture did not spill the sharded context")
	}

	sess2, reused := db.CreateSession(doc)
	defer sess2.Close()
	if reused != doc.Len() {
		t.Fatalf("reloaded context reused %d of %d tokens", reused, doc.Len())
	}
	if !sess2.base.Sharded() {
		t.Fatal("context lost its shard geometry across the spill round trip")
	}
	for l := 0; l < mc.Layers; l++ {
		for h := 0; h < mc.QHeads; h++ {
			res := sess2.Attention(l, h, qs[l][h])
			for j := range res.Output {
				if res.Output[j] != before[l][h][j] {
					t.Fatalf("L%dH%d dim %d: %v != %v after evict/spill/reload",
						l, h, j, res.Output[j], before[l][h][j])
				}
			}
		}
	}
}
