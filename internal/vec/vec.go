// Package vec provides the float32 vector and matrix kernels used throughout
// AlayaDB: inner products, numerically stable softmax, log-sum-exp merging,
// and a compact row-major matrix type.
//
// All kernels operate on []float32 because KV-cache entries are half/bfloat16
// on real hardware; float32 is the closest stdlib-representable width and
// keeps memory pressure comparable. Hot loops are 4-way unrolled, which is
// the most portable form of SIMD-friendliness available without assembly.
//
// Two calling conventions coexist. The per-row kernels (Dot, Axpy, Softmax)
// take plain slices. The batch kernels in batch.go (DotBatch, DotGather,
// WeightedSumRange, …) score or accumulate over many matrix rows at once,
// writing into caller-provided buffers: they walk the matrix backing array
// in row blocks and never allocate, which is what keeps the steady-state
// decode path garbage-free. Batch results are bitwise-identical to the
// per-row loops they replace.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The two slices must have equal
// length; Dot panics otherwise, as a length mismatch is always a programming
// error in this codebase (dimensions are fixed per model configuration).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// ScaledDot returns Dot(a, b) / sqrt(len(a)), the attention logit
// z = q·kᵀ/√d from Equation (1) of the paper.
func ScaledDot(a, b []float32) float32 {
	return Dot(a, b) / float32(math.Sqrt(float64(len(a))))
}

// Axpy computes y[i] += alpha * x[i] for all i.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes y[i] += x[i].
func Add(x, y []float32) { Axpy(1, x, y) }

// Zero sets every element of x to zero.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float32) float32 {
	return float32(math.Sqrt(float64(Dot(x, x))))
}

// Normalize scales x to unit Euclidean norm in place. A zero vector is left
// unchanged.
func Normalize(x []float32) {
	n := Norm2(x)
	if n == 0 {
		return
	}
	Scale(1/n, x)
}

// Max returns the maximum element of x and its index. It panics on an empty
// slice.
func Max(x []float32) (float32, int) {
	if len(x) == 0 {
		panic("vec: max of empty slice")
	}
	best, at := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, at = v, i+1
		}
	}
	return best, at
}

// Argmax returns the index of the maximum element of x.
func Argmax(x []float32) int {
	_, at := Max(x)
	return at
}

// Softmax writes the softmax of logits into out (which may alias logits).
// It subtracts the running maximum before exponentiating, so it is stable
// for logits of any magnitude. It returns the log-sum-exp of the input,
// which callers use to merge partial attention results.
func Softmax(logits, out []float32) float64 {
	if len(logits) != len(out) {
		panic(fmt.Sprintf("vec: softmax length mismatch %d != %d", len(logits), len(out)))
	}
	if len(logits) == 0 {
		return math.Inf(-1)
	}
	m, _ := Max(logits)
	var sum float64
	for i, z := range logits {
		e := math.Exp(float64(z - m))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return float64(m) + math.Log(sum)
}

// LogSumExp returns log(Σ exp(x_i)) computed stably. It returns -Inf for an
// empty input.
func LogSumExp(x []float32) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m, _ := Max(x)
	var sum float64
	for _, v := range x {
		sum += math.Exp(float64(v - m))
	}
	return float64(m) + math.Log(sum)
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either vector is zero.
func CosineSimilarity(a, b []float32) float32 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// L2Distance returns the Euclidean distance between a and b.
func L2Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: l2 length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return float32(math.Sqrt(s))
}

// Clone returns a fresh copy of x.
func Clone(x []float32) []float32 {
	out := make([]float32, len(x))
	copy(out, x)
	return out
}
