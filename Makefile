# Single source of truth for build/test/bench invocations; CI runs these
# exact targets so local dev and the pipeline never drift.

GO ?= go

.PHONY: all build test race bench fmt vet

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-mode sweep of the concurrent layers (plus everything else; the serve,
# core and attention packages are the ones exercising the new locking).
race:
	$(GO) test -race ./...

# Full benchmark pass; use BENCHTIME=1x for the CI smoke run.
BENCHTIME ?= 1s
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run '^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
