package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/workload"
)

func init() {
	register("fig11", "index construction time & memory: CPU vs parallel vs +GQA-sharing (Figure 11)", runFig11)
}

// runFig11 reproduces Figure 11: the cost of building the RoarGraph
// indexes for one layer of a stored context under three configurations.
//
//	CPU:       one index per query head, serial kNN (the
//	           RetrievalAttention baseline).
//	GPU:       one index per query head, kNN tiled across all cores (the
//	           cuVS-offload substitute; see DESIGN.md §1).
//	GPU+share: parallel kNN plus one index per kv-head group, trained on
//	           queries sampled across the group (§7.2).
//
// The absolute times are CPU-bound; the ratios — parallelism × fewer
// indexes — reproduce the figure's shape.
func runFig11(s Scale, w io.Writer) error {
	m := model.New(s.Model)
	layer := 1
	gcfg := graph.Config{Degree: 16, QueryKNN: 12, EfConstruction: 64}

	fmt.Fprintf(w, "Figure 11: index construction for one layer (%d query heads, %d kv heads)\n\n",
		s.Model.QHeads, s.Model.KVHeads)
	t := &table{header: []string{"context", "config", "indexes", "build time", "index MB", "speedup"}}

	for _, n := range contextLadder(s.ContextLen) {
		p, _ := workload.ProfileByName("En.QA")
		inst := workload.Generate(p, s.Seed, n, 64, s.Model.Vocab)
		cache := m.BuildKV(inst.Doc)

		build := func(perHead bool, workers int) (time.Duration, int64, int) {
			start := time.Now()
			var bytes int64
			count := 0
			if perHead {
				for qh := 0; qh < s.Model.QHeads; qh++ {
					kv := m.KVGroup(qh)
					queries := core.TrainingQueries(m, inst.Doc, layer, []int{qh}, 0.3)
					cfg := gcfg
					cfg.Workers = workers
					g := graph.Build(cache.Keys(layer, kv), queries, cfg)
					bytes += g.Bytes()
					count++
				}
			} else {
				for kv := 0; kv < s.Model.KVHeads; kv++ {
					queries := core.TrainingQueries(m, inst.Doc, layer, m.QueryHeadsOf(kv), 0.3)
					cfg := gcfg
					cfg.Workers = workers
					g := graph.Build(cache.Keys(layer, kv), queries, cfg)
					bytes += g.Bytes()
					count++
				}
			}
			return time.Since(start), bytes, count
		}

		cpuTime, cpuBytes, cpuCount := build(true, 1)
		gpuTime, gpuBytes, gpuCount := build(true, runtime.NumCPU())
		shareTime, shareBytes, shareCount := build(false, runtime.NumCPU())

		t.add(fmt.Sprintf("%d", n), "CPU", fmt.Sprintf("%d", cpuCount),
			fmtDur(cpuTime), f2(float64(cpuBytes)/1e6), "1.0x")
		t.add(fmt.Sprintf("%d", n), "GPU(parallel)", fmt.Sprintf("%d", gpuCount),
			fmtDur(gpuTime), f2(float64(gpuBytes)/1e6),
			fmt.Sprintf("%.1fx", float64(cpuTime)/float64(gpuTime)))
		t.add(fmt.Sprintf("%d", n), "GPU+share", fmt.Sprintf("%d", shareCount),
			fmtDur(shareTime), f2(float64(shareBytes)/1e6),
			fmt.Sprintf("%.1fx", float64(cpuTime)/float64(shareTime)))
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: GPU kNN gains 3-15x; adding GQA index sharing reaches 12-62x and ~4x smaller indexes")
	return nil
}
