package cluster

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	agrpc "repro/internal/serve/grpc"
	"repro/internal/serve/grpc/pb"
)

// node is one remote alayad peer: a pooled gRPC connection plus health
// state and routed-traffic counters. All methods are safe for concurrent
// use; the connection multiplexes RPCs over its HTTP/2 pool.
type node struct {
	addr     string
	conn     *agrpc.ClientConn
	healthy  atomic.Bool
	sessions atomic.Int64
	nc       metrics.NodeCounters
}

func newNode(addr string, opts ...agrpc.DialOption) *node {
	n := &node{addr: addr, conn: agrpc.Dial(addr, opts...)}
	// Optimistic start: the first real call finds out, and a transport
	// failure demotes the node until a probe revives it.
	n.healthy.Store(true)
	return n
}

// finish books one routed call's outcome: a transport-level UNAVAILABLE
// demotes the node (probes take over reviving it) and the gRPC status is
// rewritten into the serve error taxonomy so the transports fronting the
// router encode it exactly as a local Service error.
func (n *node) finish(err error) error {
	n.nc.Call(err != nil)
	if err == nil {
		return nil
	}
	var st *agrpc.StatusError
	if errors.As(err, &st) {
		if st.Kind == serve.KindUnavailable {
			n.healthy.Store(false)
		}
		kind := st.Kind
		if kind == "" {
			kind = serve.KindInternal
		}
		return &serve.Error{Kind: kind, Message: st.Message}
	}
	var se *serve.Error
	if errors.As(err, &se) {
		return se
	}
	return serve.Unavailablef("node %s: %v", n.addr, err)
}

// probe runs one bounded health check and updates the node's verdict.
func (n *node) probe(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var resp pb.HealthzResponse
	err := n.conn.Invoke(ctx, pb.MethodHealthz, &pb.HealthzRequest{}, &resp)
	ok := err == nil && resp.Status == "ok"
	n.healthy.Store(ok)
	return ok
}

func pbTokens(tokens []model.Token) []pb.Token {
	out := make([]pb.Token, len(tokens))
	for i, t := range tokens {
		out[i] = pb.Token{Topic: int64(t.Topic), Payload: int64(t.Payload), Salience: t.Salience}
	}
	return out
}

func (n *node) createSession(ctx context.Context, req *serve.CreateSessionRequest) (*serve.CreateSessionResponse, error) {
	preq := &pb.CreateSessionRequest{
		Seed:   req.Seed,
		Tokens: pbTokens(req.Tokens),
		SpanLo: int64(req.SpanLo),
		SpanHi: int64(req.SpanHi),
	}
	var resp pb.CreateSessionResponse
	if err := n.finish(n.conn.Invoke(ctx, pb.MethodCreateSession, preq, &resp)); err != nil {
		return nil, err
	}
	return &serve.CreateSessionResponse{SessionID: resp.SessionID, Reused: int(resp.Reused)}, nil
}

func (n *node) prefill(ctx context.Context, id int64) (*serve.PrefillResponse, error) {
	var resp pb.PrefillResponse
	if err := n.finish(n.conn.Invoke(ctx, pb.MethodPrefill, &pb.SessionRequest{SessionID: id}, &resp)); err != nil {
		return nil, err
	}
	return &serve.PrefillResponse{Prefilled: int(resp.Prefilled), ContextLen: int(resp.ContextLen)}, nil
}

func (n *node) update(ctx context.Context, id int64, req *serve.UpdateRequest) (*serve.UpdateResponse, error) {
	preq := &pb.UpdateRequest{SessionID: id, Token: pb.Token{
		Topic: int64(req.Token.Topic), Payload: int64(req.Token.Payload), Salience: req.Token.Salience,
	}}
	var resp pb.UpdateResponse
	if err := n.finish(n.conn.Invoke(ctx, pb.MethodUpdate, preq, &resp)); err != nil {
		return nil, err
	}
	return &serve.UpdateResponse{ContextLen: int(resp.ContextLen)}, nil
}

// tensor runs one frame-carried RPC: the request is encoded with the
// serve frame codec, carried in a FrameRequest, and the response frame
// decoded back — the same bit-exact envelope both transports use.
func (n *node) tensor(ctx context.Context, method string, id int64, req, resp interface{}) error {
	frame, err := serve.MarshalFrame(req)
	if err != nil {
		return serve.Internalf("encode frame: %v", err)
	}
	var out pb.FrameResponse
	if err := n.finish(n.conn.Invoke(ctx, method, &pb.FrameRequest{SessionID: id, Frame: frame}, &out)); err != nil {
		return err
	}
	if err := serve.UnmarshalFrame(out.Frame, resp); err != nil {
		return serve.Internalf("node %s: bad response frame: %v", n.addr, err)
	}
	return nil
}

func (n *node) store(ctx context.Context, id int64) (*serve.StoreResponse, error) {
	var resp pb.StoreResponse
	if err := n.finish(n.conn.Invoke(ctx, pb.MethodStore, &pb.SessionRequest{SessionID: id}, &resp)); err != nil {
		return nil, err
	}
	return &serve.StoreResponse{StoredTokens: int(resp.StoredTokens)}, nil
}

func (n *node) closeSession(ctx context.Context, id int64) (*serve.CloseResponse, error) {
	var resp pb.CloseSessionResponse
	if err := n.finish(n.conn.Invoke(ctx, pb.MethodCloseSession, &pb.SessionRequest{SessionID: id}, &resp)); err != nil {
		return nil, err
	}
	return &serve.CloseResponse{Status: resp.Status}, nil
}

// stepStream opens the remote per-step stream and replays each decoded
// item into sink, preserving the item-by-item flush that lets the engine
// overlap reading step N with decoding step N+1 across the hop.
func (n *node) stepStream(ctx context.Context, id int64, req *serve.StepsRequest, sink func(*serve.StepResponse) error) error {
	frame, err := serve.MarshalFrame(req)
	if err != nil {
		return serve.Internalf("encode frame: %v", err)
	}
	stream, err := n.conn.OpenStream(ctx, pb.MethodStepStream, &pb.FrameRequest{SessionID: id, Frame: frame})
	if err != nil {
		return n.finish(err)
	}
	defer stream.Close()
	for {
		var msg pb.FrameResponse
		rerr := stream.Recv(&msg)
		if rerr != nil {
			// EOF before the stream-end frame means the peer vanished.
			return n.finish(rerr)
		}
		kind, payload, perr := serve.NewStreamScanner(bytes.NewReader(msg.Frame)).ReadFrame()
		if perr != nil {
			return serve.Internalf("node %s: bad stream frame: %v", n.addr, perr)
		}
		switch kind {
		case serve.FrameStreamItem:
			var step serve.StepResponse
			if uerr := serve.UnmarshalFrame(payload, &step); uerr != nil {
				return serve.Internalf("node %s: bad stream item: %v", n.addr, uerr)
			}
			if serr := sink(&step); serr != nil {
				return serr
			}
		case serve.FrameStreamEnd:
			_, env, derr := serve.DecodeStreamEnd(payload)
			if derr != nil {
				return serve.Internalf("node %s: bad stream end: %v", n.addr, derr)
			}
			n.nc.Call(env.Error != "")
			if env.Error != "" {
				kind := serve.Kind(env.Kind)
				if kind == "" {
					kind = serve.KindInternal
				}
				return &serve.Error{Kind: kind, Message: env.Error}
			}
			return nil
		default:
			return serve.Internalf("node %s: unexpected stream frame kind %d", n.addr, kind)
		}
	}
}
