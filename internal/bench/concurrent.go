package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/workload"
)

func init() {
	register("concurrent", "aggregate decode throughput: single-global-mutex serving vs sharded per-session locking at N parallel sessions", runConcurrent)
}

// ConcurrentOptions shapes one throughput measurement.
type ConcurrentOptions struct {
	// Sessions is the number of sessions decoding in parallel.
	Sessions int
	// StepsPerSession is how many tokens each session decodes.
	StepsPerSession int
	// GlobalLock serializes every session operation behind one process-wide
	// mutex — the naive thread-safe server the sharded registry replaces.
	// When false each session is guarded only by its own (uncontended)
	// lock, the per-session discipline of serve.Registry.
	GlobalLock bool
}

// MeasureConcurrent drives Sessions parallel decode loops over one shared
// stored context and returns the aggregate decode throughput in tokens per
// second. Every decode step runs multi-head attention for one layer (fanned
// across the DB's pool) and ingests the generated token.
func MeasureConcurrent(s Scale, opts ConcurrentOptions) (float64, error) {
	s.Defaults()
	m := model.New(s.Model)
	db, err := core.New(core.Config{
		Model:         m,
		Window:        attention.Window{Sinks: 4, Recent: 32},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 16, QueryKNN: 12, EfConstruction: 64, Workers: s.Workers},
		Workers:       s.Workers,
		Pool:          pool.Default(),
	})
	if err != nil {
		return 0, err
	}
	defer db.Close()

	p, _ := workload.ProfileByName("Retr.P")
	inst := workload.Generate(p, s.Seed, s.ContextLen, 64, s.Model.Vocab)
	if _, err := db.ImportDoc(inst.Doc); err != nil {
		return 0, err
	}

	layer := s.Model.Layers - 1 // deepest layer: the DIPR-planned path
	sessions := make([]*core.Session, opts.Sessions)
	defer func() {
		for _, sess := range sessions {
			if sess != nil {
				sess.Close()
			}
		}
	}()
	for i := range sessions {
		sess, reused := db.CreateSession(inst.Doc)
		sessions[i] = sess
		if reused != inst.Doc.Len() {
			return 0, fmt.Errorf("concurrent: session %d reused %d of %d tokens", i, reused, inst.Doc.Len())
		}
	}

	// One query vector set per head, shared by every session: the work per
	// step is identical across sessions and modes, so elapsed time isolates
	// the locking discipline.
	qs := make([][]float32, s.Model.QHeads)
	for h := range qs {
		qs[h] = m.QueryVector(inst.Doc, layer, h, model.QuerySpec{
			FocusTopics: inst.Question, ContextLen: inst.Doc.Len()})
	}
	tok := inst.Doc.Tokens[inst.Doc.Len()-1]

	var global sync.Mutex
	step := func(sess *core.Session, own *sync.Mutex) {
		lock := own
		if opts.GlobalLock {
			lock = &global
		}
		lock.Lock()
		sess.AttentionAll(layer, qs)
		lock.Unlock()
		lock.Lock()
		sess.AppendToken(tok)
		lock.Unlock()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := range sessions {
		wg.Add(1)
		go func(sess *core.Session) {
			defer wg.Done()
			var own sync.Mutex
			for n := 0; n < opts.StepsPerSession; n++ {
				step(sess, &own)
			}
		}(sessions[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := float64(opts.Sessions * opts.StepsPerSession)
	return total / elapsed.Seconds(), nil
}

// runConcurrent sweeps the parallel-session ladder and reports aggregate
// decode throughput for the global-mutex baseline against per-session
// locking — the serving-path claim of the tentpole, measured.
func runConcurrent(s Scale, w io.Writer) error {
	steps := 8 * s.Trials
	fmt.Fprintf(w, "Concurrent serving: aggregate decode throughput, %d steps/session, context %d\n\n", steps, s.ContextLen)
	t := &table{header: []string{"sessions", "global mutex tok/s", "sharded tok/s", "speedup"}}
	for _, n := range []int{1, 2, 4, 8} {
		globalTPS, err := MeasureConcurrent(s, ConcurrentOptions{Sessions: n, StepsPerSession: steps, GlobalLock: true})
		if err != nil {
			return err
		}
		shardedTPS, err := MeasureConcurrent(s, ConcurrentOptions{Sessions: n, StepsPerSession: steps, GlobalLock: false})
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", globalTPS), fmt.Sprintf("%.1f", shardedTPS),
			fmt.Sprintf("%.2fx", shardedTPS/globalTPS))
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpectation: speedup ≈ min(sessions, cores) once sessions stop sharing one lock; 1-session rows stay ≈1x")
	return nil
}
