// Package attention implements the attention computation engines of
// AlayaDB (§7.2): exact full attention, a one-pass online-softmax variant
// (the FlashAttention recurrence), partial attention over arbitrary index
// subsets with log-sum-exp bookkeeping, and the LSE-weighted merge that the
// paper's data-centric engine uses to combine partial results computed
// where the data resides (window on device, retrieved tokens on host).
//
// Every kernel comes in two forms. The allocating form (Over, Full, Merge,
// …) returns fresh slices and is safe to retain. The scratch form
// (OverScratch, FullScratch, MergeInto, …) computes into a reusable Scratch
// arena — logits, weights, and outputs live in buffers reused across calls,
// which is what makes steady-state decode allocation-free. Scratch results
// alias the arena and must not be retained past the arena's next use; see
// the Scratch type for the full retention rule.
package attention

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Weights returns the full softmax attention distribution of q over every
// row of K: a_i = softmax(q·k_i/√d). The returned slice has K.Rows()
// entries. Allocating form of WeightsScratch.
func Weights(q []float32, K *vec.Matrix) []float32 {
	return WeightsScratch(nil, q, K)
}

// Full computes exact attention output o = Σ softmax(q·K/√d)_i · v_i using
// the two-pass formulation. K and V must have equal row counts. Allocating
// form of FullScratch.
func Full(q []float32, K, V *vec.Matrix) []float32 {
	return FullScratch(nil, q, K, V)
}

// FullOnline computes the same output as Full in a single pass using the
// online-softmax recurrence (running max, running denominator, rescaled
// accumulator) — the core loop of FlashAttention [32]. It exists both as
// the streaming engine and as a cross-check for the two-pass form.
func FullOnline(q []float32, K, V *vec.Matrix) []float32 {
	checkKV(K, V)
	n := K.Rows()
	out := make([]float32, V.Cols())
	if n == 0 {
		return out
	}
	runMax := float32(math.Inf(-1))
	var runSum float64
	for i := 0; i < n; i++ {
		z := vec.ScaledDot(q, K.Row(i))
		if z > runMax {
			scale := float32(math.Exp(float64(runMax - z)))
			if runSum != 0 {
				vec.Scale(scale, out)
			}
			runSum *= float64(scale)
			runMax = z
		}
		e := float32(math.Exp(float64(z - runMax)))
		runSum += float64(e)
		vec.Axpy(e, V.Row(i), out)
	}
	vec.Scale(float32(1/runSum), out)
	return out
}

// Partial is attention computed over a subset of the context: the
// softmax-weighted value mix *within the subset* plus the subset's
// log-sum-exp, which is exactly the state needed to merge partials into
// the attention output over the union of subsets.
type Partial struct {
	Output []float32
	LSE    float64
	// Count is the number of tokens the partial covers (bookkeeping for
	// metrics; Merge ignores it).
	Count int
}

// Over computes partial attention of q over the rows of K/V listed in idx.
// Indices may be in any order but must be in range; duplicates would be
// double-counted, so callers must pass disjoint sets to a subsequent Merge.
// Allocating form of OverScratch.
func Over(q []float32, K, V *vec.Matrix, idx []int) Partial {
	return OverScratch(nil, q, K, V, idx)
}

// OverRange computes partial attention over the contiguous rows [lo, hi).
// Allocating form of OverRangeScratch.
func OverRange(q []float32, K, V *vec.Matrix, lo, hi int) Partial {
	return OverRangeScratch(nil, q, K, V, lo, hi)
}

// OverQ8 computes partial attention with logits gathered from the SQ8 key
// plane (values stay fp32). Allocating form of OverQ8Scratch; see that
// function for the tolerance statement.
func OverQ8(q []float32, qK *vec.QuantMatrix, V *vec.Matrix, idx []int) Partial {
	return OverQ8Scratch(nil, q, qK, V, idx)
}

// Merge combines partial attention results over disjoint subsets into the
// attention output over their union, weighting each partial by
// exp(LSE_i − max LSE) — the same aggregation FlashAttention and
// RetrievalAttention use (§7.2). Empty partials (LSE = −Inf) contribute
// nothing.
func Merge(parts ...Partial) []float32 {
	if len(parts) == 0 {
		panic("attention: merge of no partials")
	}
	return MergeInto(make([]float32, len(parts[0].Output)), parts)
}

// Sparse computes attention restricted to the tokens in idx, normalized as
// if those were the whole context — the sparse-attention approximation of
// Equation (1).
func Sparse(q []float32, K, V *vec.Matrix, idx []int) []float32 {
	p := Over(q, K, V, idx)
	if math.IsInf(p.LSE, -1) {
		return p.Output
	}
	return p.Output
}

// Recovery returns the recovery ratio of the index set under the full
// attention distribution w: the fraction of total attention mass carried by
// the selected tokens (the paper's quality metric from [45], used in Fig 5).
func Recovery(w []float32, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += float64(w[i])
	}
	return s
}

// TokensForRecovery returns the minimum number of tokens needed to reach
// the target recovery ratio, choosing tokens greedily by weight. It is the
// quantity plotted on Figure 5's red curve.
func TokensForRecovery(w []float32, target float64) int {
	return TokensForRecoveryScratch(nil, w, target)
}

func sortDescending(s []float32) {
	// Heapsort keeps this dependency-free and O(n log n) without recursion.
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDown(s, 0, i)
	}
	// Heapsort yields ascending order; reverse for descending.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func siftDown(s []float32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && s[child+1] > s[child] {
			child++
		}
		if s[root] >= s[child] {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

func checkKV(K, V *vec.Matrix) {
	if K.Rows() != V.Rows() {
		panic(fmt.Sprintf("attention: K has %d rows, V has %d", K.Rows(), V.Rows()))
	}
}
