package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

func sampleVec(n int, seed float32) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = seed + float32(i)*0.25
	}
	// Exercise non-trivial float bit patterns.
	if n > 2 {
		v[1] = float32(math.Pi)
		v[2] = -0
	}
	return v
}

func sampleStepReq(layers, heads, dim int) *StepRequest {
	qs := make([][][]float32, layers)
	for l := range qs {
		qs[l] = make([][]float32, heads)
		for h := range qs[l] {
			qs[l][h] = sampleVec(dim, float32(l*heads+h))
		}
	}
	return &StepRequest{Token: model.Token{Topic: 7, Payload: 3, Salience: 1.5}, Queries: qs}
}

func sampleStepResp(layers, heads, dim int) *StepResponse {
	resp := &StepResponse{ContextLen: 321, Layers: make([][]AttentionResponse, layers)}
	for l := range resp.Layers {
		resp.Layers[l] = make([]AttentionResponse, heads)
		for h := range resp.Layers[l] {
			resp.Layers[l][h] = AttentionResponse{
				Output:    sampleVec(dim, float32(100+l*heads+h)),
				Plan:      "full/fine",
				Retrieved: 12,
				Attended:  321,
			}
		}
	}
	return resp
}

// roundTrip marshals v, unmarshals into fresh, and compares.
func roundTrip(t *testing.T, v, fresh interface{}) []byte {
	t.Helper()
	data, err := MarshalFrame(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	if err := UnmarshalFrame(data, fresh); err != nil {
		t.Fatalf("unmarshal %T: %v", fresh, err)
	}
	return data
}

func TestFrameRoundTrip(t *testing.T) {
	attnReq := &AttentionRequest{Layer: 2, QHead: 5, Query: sampleVec(16, 1)}
	var gotAttnReq AttentionRequest
	roundTrip(t, attnReq, &gotAttnReq)
	if !reflect.DeepEqual(*attnReq, gotAttnReq) {
		t.Fatalf("attention request: got %+v want %+v", gotAttnReq, *attnReq)
	}

	attnResp := &AttentionResponse{Output: sampleVec(8, 2), Plan: "dipr/fine[filtered]", Retrieved: 3, Attended: 99}
	var gotAttnResp AttentionResponse
	roundTrip(t, attnResp, &gotAttnResp)
	if !reflect.DeepEqual(*attnResp, gotAttnResp) {
		t.Fatalf("attention response: got %+v want %+v", gotAttnResp, *attnResp)
	}

	allReq := &AttentionAllRequest{Layer: 1, Queries: [][]float32{sampleVec(8, 3), sampleVec(8, 4)}}
	var gotAllReq AttentionAllRequest
	roundTrip(t, allReq, &gotAllReq)
	if !reflect.DeepEqual(*allReq, gotAllReq) {
		t.Fatalf("attention_all request: got %+v want %+v", gotAllReq, *allReq)
	}

	allResp := &AttentionAllResponse{Heads: sampleStepResp(1, 3, 8).Layers[0]}
	var gotAllResp AttentionAllResponse
	roundTrip(t, allResp, &gotAllResp)
	if !reflect.DeepEqual(allResp.Heads, gotAllResp.Heads) {
		t.Fatalf("attention_all response: got %+v want %+v", gotAllResp.Heads, allResp.Heads)
	}

	stepReq := sampleStepReq(3, 2, 8)
	var gotStepReq StepRequest
	roundTrip(t, stepReq, &gotStepReq)
	if !reflect.DeepEqual(*stepReq, gotStepReq) {
		t.Fatalf("step request: got %+v want %+v", gotStepReq, *stepReq)
	}

	stepResp := sampleStepResp(2, 3, 8)
	var gotStepResp StepResponse
	roundTrip(t, stepResp, &gotStepResp)
	if stepResp.ContextLen != gotStepResp.ContextLen || !reflect.DeepEqual(stepResp.Layers, gotStepResp.Layers) {
		t.Fatalf("step response: got %+v want %+v", gotStepResp, *stepResp)
	}

	stepsReq := &StepsRequest{Steps: []StepRequest{*sampleStepReq(2, 2, 4), *sampleStepReq(2, 2, 4)}}
	var gotStepsReq StepsRequest
	roundTrip(t, stepsReq, &gotStepsReq)
	if !reflect.DeepEqual(*stepsReq, gotStepsReq) {
		t.Fatalf("steps request: got %+v want %+v", gotStepsReq, *stepsReq)
	}

	stepsResp := &StepsResponse{Steps: []StepResponse{*sampleStepResp(1, 2, 4), *sampleStepResp(1, 2, 4)}}
	var gotStepsResp StepsResponse
	roundTrip(t, stepsResp, &gotStepsResp)
	if len(gotStepsResp.Steps) != 2 || !reflect.DeepEqual(stepsResp.Steps[1].Layers, gotStepsResp.Steps[1].Layers) {
		t.Fatalf("steps response: got %+v want %+v", gotStepsResp, *stepsResp)
	}
}

// TestFrameFloatBits pins the IEEE-754 bit preservation the codec's
// identity guarantee rests on: every special value crosses the wire with
// its exact bits.
func TestFrameFloatBits(t *testing.T) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.MaxFloat32, math.SmallestNonzeroFloat32,
		float32(math.NaN()),
	}
	req := &AttentionRequest{Layer: 0, QHead: 0, Query: specials}
	var got AttentionRequest
	roundTrip(t, req, &got)
	for i := range specials {
		if math.Float32bits(specials[i]) != math.Float32bits(got.Query[i]) {
			t.Fatalf("float %d: bits %08x -> %08x", i,
				math.Float32bits(specials[i]), math.Float32bits(got.Query[i]))
		}
	}
}

func TestFrameHeaderValidation(t *testing.T) {
	good, err := MarshalFrame(&AttentionRequest{Layer: 1, QHead: 1, Query: sampleVec(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	var req AttentionRequest

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"short header", good[:8], "truncated"},
		{"bad magic", append([]byte("NOPE"), good[4:]...), "magic"},
		{"bad version", func() []byte { d := bytes.Clone(good); d[4] = 9; return d }(), "version"},
		{"bad kind", func() []byte { d := bytes.Clone(good); d[5] = FrameStepResponse; return d }(), "kind"},
		{"truncated payload", good[:len(good)-3], "payload length"},
		{"trailing byte outside payload", func() []byte {
			d := bytes.Clone(good)
			d = append(d, 0xAA)
			return d
		}(), "payload length"},
		{"trailing byte inside payload", func() []byte {
			d := bytes.Clone(good)
			d = append(d, 0xAA)
			binary.LittleEndian.PutUint32(d[8:], uint32(len(d)-frameHeaderLen))
			return d
		}(), "trailing"},
	}
	for _, tc := range cases {
		if err := UnmarshalFrame(tc.data, &req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Unsupported types are rejected on both sides.
	if _, err := MarshalFrame(&StatsResponse{}); err == nil {
		t.Error("marshal of unframeable type succeeded")
	}
	var stats StatsResponse
	if err := UnmarshalFrame(good, &stats); err == nil {
		t.Error("unmarshal into unframeable type succeeded")
	}
}

// TestFrameCraftedGeometry feeds frames whose counts and geometry claim
// far more data than the body holds; decoders must fail cleanly instead of
// over-allocating or panicking.
func TestFrameCraftedGeometry(t *testing.T) {
	// A step request claiming 1e9 layers in a tiny body.
	crafted := []byte(frameMagic)
	crafted = append(crafted, FrameVersion, FrameStepRequest, 0, 0)
	payload := appendToken(nil, model.Token{})
	payload = append(payload, 0)                // flags
	payload = appendU32(payload, 1_000_000_000) // layers
	payload = appendU32(payload, 1_000_000_000) // heads
	payload = appendU32(payload, 1_000_000_000) // dim
	crafted = appendU32(crafted, uint32(len(payload)))
	crafted = append(crafted, payload...)
	var step StepRequest
	if err := UnmarshalFrame(crafted, &step); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("crafted geometry: err = %v", err)
	}

	// Zero dim with a huge layers×heads product: no float payload is
	// claimed, but decoding would still demand billions of slice headers.
	crafted = []byte(frameMagic)
	crafted = append(crafted, FrameVersion, FrameStepRequest, 0, 0)
	payload = appendToken(nil, model.Token{})
	payload = append(payload, 0)             // flags
	payload = appendU32(payload, 16_000_000) // layers
	payload = appendU32(payload, 16_000_000) // heads
	payload = appendU32(payload, 0)          // dim
	crafted = appendU32(crafted, uint32(len(payload)))
	crafted = append(crafted, payload...)
	var zeroDim StepRequest
	if err := UnmarshalFrame(crafted, &zeroDim); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("zero-dim crafted geometry: err = %v", err)
	}

	// A steps request claiming a huge step count.
	crafted = []byte(frameMagic)
	crafted = append(crafted, FrameVersion, FrameStepsRequest, 0, 0)
	payload = appendU32(nil, 4_000_000_000)
	crafted = appendU32(crafted, uint32(len(payload)))
	crafted = append(crafted, payload...)
	var steps StepsRequest
	if err := UnmarshalFrame(crafted, &steps); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("crafted count: err = %v", err)
	}

	// A vector length past the payload end.
	crafted = []byte(frameMagic)
	crafted = append(crafted, FrameVersion, FrameAttentionRequest, 0, 0)
	payload = appendU32(nil, 0)
	payload = appendU32(payload, 0)
	payload = appendU32(payload, 500) // dim with no floats behind it
	crafted = appendU32(crafted, uint32(len(payload)))
	crafted = append(crafted, payload...)
	var attn AttentionRequest
	if err := UnmarshalFrame(crafted, &attn); err == nil {
		t.Fatal("oversized vector accepted")
	}
}

// TestFrameRaggedGeometry: encoders refuse query grids the fixed-geometry
// layout cannot represent.
func TestFrameRaggedGeometry(t *testing.T) {
	if _, err := MarshalFrame(&AttentionAllRequest{Queries: [][]float32{make([]float32, 4), make([]float32, 5)}}); err == nil {
		t.Fatal("ragged attention_all accepted")
	}
	bad := sampleStepReq(2, 2, 4)
	bad.Queries[1] = bad.Queries[1][:1]
	if _, err := MarshalFrame(bad); err == nil {
		t.Fatal("ragged step accepted")
	}
}
