// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§9), each regenerating the artefact's rows or
// series at a configurable scale. See DESIGN.md §3 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/vec"
)

// Scale bundles the knobs every experiment shares. The defaults target a
// 2-CPU container; Paper-scale runs raise ContextLen and Trials.
type Scale struct {
	// ContextLen is the long-context size in tokens (default 4096).
	ContextLen int
	// Trials is the number of task instances per cell (default 3).
	Trials int
	// Workers bounds parallelism (default 2).
	Workers int
	// Seed namespaces the whole run.
	Seed uint64
	// Model overrides the substrate configuration (zero = model.Default
	// with 4 layers to keep runs tractable).
	Model model.Config
}

// Defaults fills unset fields.
func (s *Scale) Defaults() {
	if s.ContextLen == 0 {
		s.ContextLen = 4096
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	if s.Workers == 0 {
		s.Workers = 2
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Model.Layers == 0 {
		s.Model = model.Default()
		s.Model.Layers = 4
	}
}

// Runner executes one experiment, writing its artefact to w.
type Runner func(s Scale, w io.Writer) error

// registry maps experiment ids to runners; populated by init functions in
// the per-experiment files.
var registry = map[string]entry{}

type entry struct {
	runner Runner
	desc   string
}

func register(name, desc string, r Runner) {
	registry[name] = entry{runner: r, desc: desc}
}

// Run executes the named experiment.
func Run(name string, s Scale, w io.Writer) error {
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (try: %s)", name, strings.Join(Names(), ", "))
	}
	s.Defaults()
	return e.runner(s, w)
}

// Names lists registered experiments, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's one-line description.
func Describe(name string) string {
	if e, ok := registry[name]; ok {
		return e.desc
	}
	return ""
}

// table renders rows with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func yesNo(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// trainingFor synthesizes the GQA-shared training queries for one
// (layer, kv head), at the harness's default sampling rate.
func trainingFor(m *model.Model, doc *model.Document, layer, kvHead int) *vec.Matrix {
	return core.TrainingQueries(m, doc, layer, m.QueryHeadsOf(kvHead), 0.3)
}

// buildGraphFor constructs a graph index with the harness's default
// construction parameters.
func buildGraphFor(keys *vec.Matrix, queries *vec.Matrix, workers int) *graph.Graph {
	return graph.Build(keys, queries, graph.Config{
		Degree: 16, QueryKNN: 12, EfConstruction: 64, Workers: workers})
}
