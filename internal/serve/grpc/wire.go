package grpc

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// errTooLarge marks a message rejected by the receive-size bound, so the
// server can answer with the too-large kind (ResourceExhausted) rather
// than a generic bad request — the gRPC analog of HTTP 413.
var errTooLarge = errors.New("message exceeds size bound")

// ContentType is the media type both peers send; ContentTypeBare is also
// accepted on requests, as the gRPC spec requires.
const (
	ContentType     = "application/grpc+proto"
	ContentTypeBare = "application/grpc"
)

// Wire metadata keys in net/http canonical form (HTTP/2 lowercases them
// on the wire). KindTrailer is the transport extension carrying the
// exact serve.Kind alongside the lossy canonical code.
const (
	statusTrailer  = "Grpc-Status"
	messageTrailer = "Grpc-Message"
	timeoutHeader  = "Grpc-Timeout"
	// KindTrailer carries the exact serve.Kind of a non-OK status.
	KindTrailer = "Alaya-Kind"
)

// DefaultMaxRecvBytes bounds one decoded gRPC message on both peers.
// Matches the spirit of serve.DefaultMaxBodyBytes: large enough for any
// real step batch, small enough that a crafted length prefix cannot
// force an absurd allocation.
const DefaultMaxRecvBytes int64 = 64 << 20

// msgBufPool recycles message encode/decode buffers across RPCs.
var msgBufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 4096); return &b }}

func getMsgBuf() []byte  { return (*msgBufPool.Get().(*[]byte))[:0] }
func putMsgBuf(b []byte) { msgBufPool.Put(&b) }

// marshalMessage encodes one length-prefixed gRPC message (uncompressed
// flag byte + 4-byte big-endian length + proto payload) into a pooled
// buffer the caller must return via putMsgBuf.
func marshalMessage(m interface {
	AppendProto(b []byte) []byte
}) []byte {
	buf := getMsgBuf()
	buf = append(buf, 0, 0, 0, 0, 0)
	buf = m.AppendProto(buf)
	n := len(buf) - 5
	buf[1], buf[2], buf[3], buf[4] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return buf
}

// readMessage reads one length-prefixed message, appending its payload
// to buf (pass a pooled slice) and returning the extended slice. A clean
// EOF before the prefix returns io.EOF; a partial prefix or body is
// io.ErrUnexpectedEOF. Compressed messages and payloads over max are
// rejected.
func readMessage(r io.Reader, buf []byte, max int64) ([]byte, error) {
	var prefix [5]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("grpc: truncated message prefix: %w", err)
		}
		return nil, err
	}
	if prefix[0] != 0 {
		return nil, fmt.Errorf("grpc: compressed message (flag %d) not supported", prefix[0])
	}
	n := int64(prefix[1])<<24 | int64(prefix[2])<<16 | int64(prefix[3])<<8 | int64(prefix[4])
	if n > max {
		return nil, fmt.Errorf("grpc: message length %d exceeds %d-byte bound: %w", n, max, errTooLarge)
	}
	start := len(buf)
	if int64(cap(buf)-start) < n {
		grown := make([]byte, start, start+int(n))
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:start+int(n)]
	if _, err := io.ReadFull(r, buf[start:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("grpc: truncated message body: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return buf, nil
}

// isGRPCContentType accepts application/grpc with an optional +proto (or
// other) suffix and optional parameters.
func isGRPCContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	return ct == ContentTypeBare || strings.HasPrefix(ct, ContentTypeBare+"+")
}

// encodeGRPCMessage percent-encodes a status message per the gRPC spec:
// bytes outside printable ASCII, plus '%', become %XX; spaces survive.
func encodeGRPCMessage(msg string) string {
	if !strings.ContainsFunc(msg, func(r rune) bool { return r < ' ' || r > '~' || r == '%' }) {
		return msg
	}
	const hex = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c < ' ' || c > '~' || c == '%' {
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xF])
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// decodeGRPCMessage reverses encodeGRPCMessage, passing malformed
// escapes through untouched as the spec directs.
func decodeGRPCMessage(msg string) string {
	if !strings.ContainsRune(msg, '%') {
		return msg
	}
	var b strings.Builder
	for i := 0; i < len(msg); i++ {
		if msg[i] == '%' && i+2 < len(msg) {
			hi, err1 := strconv.ParseUint(msg[i+1:i+3], 16, 8)
			if err1 == nil {
				b.WriteByte(byte(hi))
				i += 2
				continue
			}
		}
		b.WriteByte(msg[i])
	}
	return b.String()
}

// encodeTimeout renders a context deadline as a grpc-timeout value.
func encodeTimeout(d time.Duration) string {
	if d <= 0 {
		return "0m"
	}
	if ms := d.Milliseconds(); ms < 1e8 {
		if ms == 0 {
			ms = 1
		}
		return strconv.FormatInt(ms, 10) + "m"
	}
	return strconv.FormatInt(int64(d.Seconds()), 10) + "S"
}

// decodeTimeout parses a grpc-timeout header value.
func decodeTimeout(s string) (time.Duration, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("grpc: malformed timeout %q", s)
	}
	n, err := strconv.ParseInt(s[:len(s)-1], 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("grpc: malformed timeout %q", s)
	}
	var unit time.Duration
	switch s[len(s)-1] {
	case 'n':
		unit = time.Nanosecond
	case 'u':
		unit = time.Microsecond
	case 'm':
		unit = time.Millisecond
	case 'S':
		unit = time.Second
	case 'M':
		unit = time.Minute
	case 'H':
		unit = time.Hour
	default:
		return 0, fmt.Errorf("grpc: malformed timeout unit %q", s)
	}
	return time.Duration(n) * unit, nil
}
