// Package serve exposes a DB over HTTP — the deployment shape of §1's
// vision: inference engines connect to AlayaDB the way web applications
// connect to a relational database, shipping generated K/V in and getting
// finished attention outputs back. The interface carries only queries and
// attention results (never KV cache contents), which is exactly the
// paper's "interface simplification" benefit of the decoupling.
//
// Endpoints (JSON bodies):
//
//	POST /v1/sessions                      create a session (body: document)
//	POST /v1/sessions/{id}/prefill        generate KV for unreused tokens
//	POST /v1/sessions/{id}/update         ingest one generated token
//	POST /v1/sessions/{id}/attention      compute one head's attention
//	POST /v1/sessions/{id}/attention_all  compute every head of a layer
//	POST /v1/sessions/{id}/store          persist as a reusable context
//	DELETE /v1/sessions/{id}              close the session
//	GET  /v1/stats                        DB-level statistics
//
// # Locking discipline
//
// The server is built for many sessions in flight at once; there is no
// global request lock. Three independent levels exist, always acquired
// top-down and never held across levels longer than needed:
//
//  1. Session IDs come from a lock-free atomic counter.
//  2. The session table is sharded (Registry); a shard mutex guards only
//     its map slice and is held just for insert/lookup/delete, so requests
//     for different sessions never serialize on the table.
//  3. Each session carries a request RWMutex: attention and stats take it
//     shared (Session is internally thread-safe for reads and fans its
//     per-head work across the worker pool), while prefill, update, store
//     and close take it exclusive because they grow or consume the
//     session's KV tail. Requests on *different* sessions therefore only
//     ever share the worker pool, never a lock.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/devmem"
	"repro/internal/model"
)

// attnResultsPool recycles the per-request attention result buffers of the
// attention_all endpoint. Each request Gets a slice, computes through
// Session.AttentionAllInto (which reuses the entries' Output/RetrievedIDs
// storage), serializes the response, and Puts the slice back — so a busy
// server's steady-state attention traffic produces no per-head garbage
// beyond the JSON encoding itself.
var attnResultsPool = sync.Pool{New: func() interface{} { return new([]core.AttentionResult) }}

// DefaultShards is the registry shard count used when no option overrides
// it: comfortably above typical core counts so shard collisions are rare.
const DefaultShards = 32

// Server wraps a DB with HTTP handlers. Create with NewServer and mount
// via Handler(). Safe for concurrent use; see the package comment for the
// locking discipline.
type Server struct {
	db  *core.DB
	reg *Registry
}

// Option configures a Server.
type Option func(*Server)

// WithShards sets the session-registry shard count (rounded up to a power
// of two).
func WithShards(n int) Option {
	return func(s *Server) { s.reg = NewRegistry(n) }
}

// NewServer returns a server over db.
func NewServer(db *core.DB, opts ...Option) *Server {
	s := &Server{db: db, reg: NewRegistry(DefaultShards)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSession)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// --- wire types ---

// DocumentWire is the JSON form of a document.
type DocumentWire struct {
	Seed   uint64        `json:"seed"`
	Tokens []model.Token `json:"tokens"`
}

// CreateSessionResponse reports the session id and how many prompt tokens
// were reused from stored contexts (the "truncated prompts" of Table 2:
// the engine only needs to prefill from Reused onward).
type CreateSessionResponse struct {
	SessionID int64 `json:"session_id"`
	Reused    int   `json:"reused"`
}

// UpdateRequest ingests one token: its document entry plus nothing else —
// the server generates KV through the substrate. (A real deployment ships
// the K/V tensors; the substrate owns them here.)
type UpdateRequest struct {
	Token model.Token `json:"token"`
}

// AttentionRequest asks for one head's attention output.
type AttentionRequest struct {
	Layer int       `json:"layer"`
	QHead int       `json:"q_head"`
	Query []float32 `json:"query"`
}

// AttentionResponse carries the output and the execution facts.
type AttentionResponse struct {
	Output    []float32 `json:"output"`
	Plan      string    `json:"plan"`
	Retrieved int       `json:"retrieved"`
	Attended  int       `json:"attended"`
}

// AttentionAllRequest asks for every query head of a layer in one round
// trip; the server fans the heads across its worker pool. Queries is
// indexed by query head and must cover all heads.
type AttentionAllRequest struct {
	Layer   int         `json:"layer"`
	Queries [][]float32 `json:"queries"`
}

// AttentionAllResponse carries one AttentionResponse per query head.
type AttentionAllResponse struct {
	Heads []AttentionResponse `json:"heads"`
}

// StatsResponse summarises the DB across both storage tiers.
type StatsResponse struct {
	Contexts     int     `json:"contexts"`
	StoredBytes  int64   `json:"stored_bytes"`
	Evictions    int64   `json:"evictions"`
	DeviceUsedGB float64 `json:"device_used_gb"`
	OpenSessions int     `json:"open_sessions"`
	// Spill tier (zero/absent when no spill directory is configured).
	SpillEnabled     bool    `json:"spill_enabled"`
	SpilledContexts  int     `json:"spilled_contexts,omitempty"`
	SpilledBytes     int64   `json:"spilled_bytes,omitempty"`
	Spills           int64   `json:"spills,omitempty"`
	ReloadHits       int64   `json:"reload_hits,omitempty"`
	ReloadMisses     int64   `json:"reload_misses,omitempty"`
	ReloadP50Millis  float64 `json:"reload_p50_ms,omitempty"`
	ReloadP95Millis  float64 `json:"reload_p95_ms,omitempty"`
	SpillCacheHits   int64   `json:"spill_cache_hits,omitempty"`
	SpillCacheMisses int64   `json:"spill_cache_misses,omitempty"`
	// Stored KV footprint split by plane (always present): with the SQ8
	// plane enabled the scoring traffic runs over KeyQuantBytes — about a
	// quarter of KeyBytes — while KeyBytes is the fp32 mirror touched only
	// by reranks and materialization.
	KeyBytes      int64 `json:"key_bytes"`
	ValueBytes    int64 `json:"value_bytes"`
	KeyQuantBytes int64 `json:"key_quant_bytes,omitempty"`
	// SQ8 read path (zero/absent when Config.QuantKeys is off).
	QuantEnabled  bool    `json:"quant_enabled"`
	QuantSearches int64   `json:"quant_searches,omitempty"`
	FP32Searches  int64   `json:"fp32_searches,omitempty"`
	RerankedRows  int64   `json:"reranked_rows,omitempty"`
	RerankPerSrch float64 `json:"rerank_per_search,omitempty"`
}

// --- handlers ---

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var doc DocumentWire
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		httpError(w, http.StatusBadRequest, "bad document: %v", err)
		return
	}
	sess, reused := s.db.CreateSession(&model.Document{Seed: doc.Seed, Tokens: doc.Tokens})
	id := s.reg.Add(sess)
	writeJSON(w, CreateSessionResponse{SessionID: id, Reused: reused})
}

// handleSession routes /v1/sessions/{id}/{action}.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	parts := strings.SplitN(rest, "/", 2)
	id, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad session id %q", parts[0])
		return
	}
	action := ""
	if len(parts) == 2 {
		action = parts[1]
	}

	if action == "" && r.Method == http.MethodDelete {
		sess, ok := s.reg.Remove(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no session %d", id)
			return
		}
		if err := sess.Close(); err != nil {
			httpError(w, http.StatusInternalServerError, "close: %v", err)
			return
		}
		writeJSON(w, map[string]string{"status": "closed"})
		return
	}

	// Mutating actions take the session's request lock exclusively; reads
	// share it (package comment, level 3).
	exclusive := action == "prefill" || action == "update" || action == "store"
	sess, release, ok := s.reg.Acquire(id, exclusive)
	if !ok {
		httpError(w, http.StatusNotFound, "no session %d", id)
		return
	}
	defer release()

	switch {
	case action == "prefill" && r.Method == http.MethodPost:
		fed := sess.PrefillRemaining()
		writeJSON(w, map[string]int{"prefilled": fed, "context_len": sess.ContextLen(0)})
	case action == "update" && r.Method == http.MethodPost:
		var req UpdateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad update: %v", err)
			return
		}
		sess.AppendToken(req.Token)
		writeJSON(w, map[string]int{"context_len": sess.ContextLen(0)})
	case action == "attention" && r.Method == http.MethodPost:
		var req AttentionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad attention request: %v", err)
			return
		}
		mc := s.db.Model().Config()
		if req.Layer < 0 || req.Layer >= mc.Layers || req.QHead < 0 || req.QHead >= mc.QHeads {
			httpError(w, http.StatusBadRequest, "layer/head out of range")
			return
		}
		if len(req.Query) != mc.HeadDim {
			httpError(w, http.StatusBadRequest, "query dim %d, want %d", len(req.Query), mc.HeadDim)
			return
		}
		res := sess.Attention(req.Layer, req.QHead, req.Query)
		writeJSON(w, attentionWire(res))
	case action == "attention_all" && r.Method == http.MethodPost:
		var req AttentionAllRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad attention_all request: %v", err)
			return
		}
		mc := s.db.Model().Config()
		if req.Layer < 0 || req.Layer >= mc.Layers {
			httpError(w, http.StatusBadRequest, "layer out of range")
			return
		}
		if len(req.Queries) != mc.QHeads {
			httpError(w, http.StatusBadRequest, "%d queries, want one per head (%d)", len(req.Queries), mc.QHeads)
			return
		}
		for h, q := range req.Queries {
			if len(q) != mc.HeadDim {
				httpError(w, http.StatusBadRequest, "head %d query dim %d, want %d", h, len(q), mc.HeadDim)
				return
			}
		}
		buf := attnResultsPool.Get().(*[]core.AttentionResult)
		if cap(*buf) < len(req.Queries) {
			*buf = make([]core.AttentionResult, len(req.Queries))
		}
		results := (*buf)[:len(req.Queries)]
		sess.AttentionAllInto(req.Layer, req.Queries, results)
		resp := AttentionAllResponse{Heads: make([]AttentionResponse, len(results))}
		for h := range results {
			resp.Heads[h] = attentionWire(results[h])
		}
		writeJSON(w, resp)
		*buf = results
		attnResultsPool.Put(buf)
	case action == "store" && r.Method == http.MethodPost:
		ctx, err := s.db.Store(sess)
		if err != nil {
			httpError(w, http.StatusConflict, "store: %v", err)
			return
		}
		writeJSON(w, map[string]int{"stored_tokens": ctx.Len()})
	default:
		httpError(w, http.StatusNotFound, "unknown action %q", action)
	}
}

func attentionWire(res core.AttentionResult) AttentionResponse {
	return AttentionResponse{
		Output:    res.Output,
		Plan:      res.Plan.String(),
		Retrieved: res.Retrieved,
		Attended:  res.Attended,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := StatsResponse{
		Contexts:     s.db.NumContexts(),
		StoredBytes:  s.db.StoredBytes(),
		Evictions:    s.db.Evictions(),
		DeviceUsedGB: devmem.GB(s.db.Device().Used()),
		OpenSessions: s.reg.Len(),
	}
	kv := s.db.StoredKVBytes()
	resp.KeyBytes = kv.Keys
	resp.ValueBytes = kv.Values
	resp.KeyQuantBytes = kv.QuantKeys
	resp.QuantEnabled = s.db.QuantEnabled()
	if qs := s.db.QuantStats(); resp.QuantEnabled || qs.FP32Searches > 0 {
		resp.QuantSearches = qs.QuantSearches
		resp.FP32Searches = qs.FP32Searches
		resp.RerankedRows = qs.RerankedRows
		resp.RerankPerSrch = qs.RerankPerSearch()
	}
	if ts := s.db.TierStats(); ts.Enabled {
		resp.SpillEnabled = true
		resp.SpilledContexts = ts.SpilledContexts
		resp.SpilledBytes = ts.SpilledDiskBytes
		resp.Spills = ts.Counters.Spills
		resp.ReloadHits = ts.Counters.ReloadHits
		resp.ReloadMisses = ts.Counters.ReloadMisses
		resp.ReloadP50Millis = float64(ts.Counters.ReloadP50) / float64(time.Millisecond)
		resp.ReloadP95Millis = float64(ts.Counters.ReloadP95) / float64(time.Millisecond)
		resp.SpillCacheHits = ts.Buffer.Hits
		resp.SpillCacheMisses = ts.Buffer.Misses
	}
	writeJSON(w, resp)
}

// Close closes every open session.
func (s *Server) Close() error {
	var firstErr error
	for _, sess := range s.reg.Drain() {
		if err := sess.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
