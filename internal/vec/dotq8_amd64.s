//go:build amd64

#include "textflag.h"

// func dotQ8WSSE2(q *int16, k *int8, n int64) int32
//
// Requires n > 0 and n % 8 == 0 (the Go wrapper guarantees both). Two
// independent accumulators hide the PMADDWL latency; integer adds are
// exact, so lane order does not affect the result.
TEXT ·dotQ8WSSE2(SB), NOSPLIT, $0-28
	MOVQ q+0(FP), SI
	MOVQ k+8(FP), DI
	MOVQ n+16(FP), CX
	PXOR X0, X0              // accumulator A
	PXOR X5, X5              // accumulator B
	MOVQ CX, DX
	SHRQ $4, DX              // 16-code double steps
	JZ   single

double:
	MOVOU (SI), X1           // 8 widened query words
	MOVQ  (DI), X2           // 8 key codes
	PUNPCKLBW X2, X2         // duplicate bytes into word lanes
	PSRAW $8, X2             // arithmetic shift = sign extension
	PMADDWL X1, X2           // 4 int32 pair sums
	PADDD X2, X0
	MOVOU 16(SI), X3
	MOVQ  8(DI), X4
	PUNPCKLBW X4, X4
	PSRAW $8, X4
	PMADDWL X3, X4
	PADDD X4, X5
	ADDQ $32, SI
	ADDQ $16, DI
	DECQ DX
	JNZ  double

single:
	ANDQ $15, CX
	JZ   sum                 // no odd 8-code step left
	MOVOU (SI), X1
	MOVQ  (DI), X2
	PUNPCKLBW X2, X2
	PSRAW $8, X2
	PMADDWL X1, X2
	PADDD X2, X0

sum:
	PADDD X5, X0
	PSHUFD $0xEE, X0, X1     // high qword lanes
	PADDD X1, X0
	PSHUFD $0x55, X0, X1     // lane 1
	PADDD X1, X0
	MOVD X0, AX
	MOVL AX, ret+24(FP)
	RET
