package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/attention"
	"repro/internal/baselines"
	"repro/internal/index/coarse"
	"repro/internal/index/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

func init() {
	register("table5", "generation quality of sparse-attention methods on the 8-task suite (Table 5)", runTable5)
}

// ScaledSLO maps the paper's human-reading-speed TPOT SLO (0.24 s at 131K
// tokens on an L20 GPU) to our context scale: the budget's variable part
// shrinks proportionally with context length (decode cost is linear in n),
// on top of a 10 ms constant floor covering the per-step overheads that do
// not scale down (query synthesis, goroutine dispatch — every method pays
// them equally; the paper's GPU steps have analogous launch overheads).
func ScaledSLO(contextLen int) time.Duration {
	const floor = 10 * time.Millisecond
	return floor + time.Duration(float64(metrics.HumanReadingSLO)*float64(contextLen)/131072)
}

// table5Methods builds the compared configurations over shared assets,
// mirroring Table 5's rows. Window and retrieval sizes scale with context
// length, keeping the paper's proportions ([128+512]+k at 131K).
func table5Methods(a *baselines.Assets, n int, dim int) []baselines.Method {
	win := attention.Window{Sinks: scaleTo(128, n), Recent: scaleTo(512, n)}
	infWin := attention.Window{Sinks: scaleTo(128, n), Recent: scaleTo(4096, n)}
	return []baselines.Method{
		&baselines.Full{A: a},
		&baselines.InfLLM{A: a, Window: infWin, Budget: scaleTo(4096, n)},
		&baselines.StreamingLLM{A: a, Window: attention.Window{Sinks: scaleTo(128, n), Recent: scaleTo(8192, n)}},
		&baselines.TopK{A: a, Window: win, K: scaleTo(100, n)},
		&baselines.TopK{A: a, Window: win, K: scaleTo(2000, n)},
		&baselines.DIPRS{A: a, Window: win, Beta: betaFor(dim)},
	}
}

// scaleTo maps a token count defined at the paper's 131K scale to context
// length n, with a floor of 4.
func scaleTo(paperTokens, n int) int {
	v := paperTokens * n / 131072
	if v < 4 {
		v = 4
	}
	return v
}

func betaFor(dim int) float32 {
	// The paper's Table 5 uses beta=50 at d=128 (alpha ≈ 1.2%). The
	// substrate's flatter logit landscape calls for a tighter range —
	// beta 17.6 at d=128 (alpha ≈ 21%) spans the distractor-to-answer
	// salience band of the task suite without flooding into noise.
	return 4.4 * float32(dim) / 32
}

func runTable5(s Scale, w io.Writer) error {
	m := model.New(s.Model)
	slo := ScaledSLO(s.ContextLen)
	suite := workload.InfinityBench()

	fmt.Fprintf(w, "Table 5: generation quality (context %d tokens, %d trials/task, scaled SLO %v)\n\n",
		s.ContextLen, s.Trials, slo)

	type methodAgg struct {
		quality map[string]*metrics.Quality // per task
		lat     metrics.Latency
	}
	var names []string
	agg := map[string]*methodAgg{}

	for _, p := range suite {
		for trial := 0; trial < s.Trials; trial++ {
			inst := workload.Generate(p, s.Seed+uint64(17*trial), s.ContextLen, 64, s.Model.Vocab)
			a := baselines.NewAssets(m, inst.Doc)
			a.BuildGraphs(graph.Config{Degree: 16, QueryKNN: 12, EfConstruction: 64, Workers: s.Workers}, 0.3)
			a.BuildCoarse(16, coarse.Bound)

			for _, meth := range table5Methods(a, s.ContextLen, s.Model.HeadDim) {
				ma := agg[meth.Name()]
				if ma == nil {
					ma = &methodAgg{quality: map[string]*metrics.Quality{}}
					agg[meth.Name()] = ma
					names = append(names, meth.Name())
				}
				if ma.quality[p.Name] == nil {
					ma.quality[p.Name] = &metrics.Quality{}
				}

				out := workload.Evaluate(m, inst, func(layer, qHead int, q []float32) ([]float32, []int) {
					return meth.Attend(layer, qHead, q)
				})
				ma.quality[p.Name].Record(out.Correct, out.Recovery)

				// TPOT: one full decode step across all layers and heads.
				start := time.Now()
				for l := 0; l < s.Model.Layers; l++ {
					for qh := 0; qh < s.Model.QHeads; qh++ {
						q := m.QueryVector(inst.Doc, l, qh, model.QuerySpec{
							FocusTopics: inst.Question, ContextLen: s.ContextLen})
						meth.Attend(l, qh, q)
					}
				}
				ma.lat.Record(time.Since(start))
			}
		}
	}

	header := []string{"method", "SLO"}
	for _, p := range suite {
		header = append(header, p.Name)
	}
	header = append(header, "Avg", "TPOT")
	t := &table{header: header}
	for _, name := range names {
		ma := agg[name]
		row := []string{name, yesNo(ma.lat.Mean() <= slo)}
		var sum float64
		for _, p := range suite {
			acc := ma.quality[p.Name].Accuracy()
			sum += acc
			row = append(row, f1(acc))
		}
		row = append(row, f1(sum/float64(len(suite))), ms(ma.lat.Mean()))
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: DIPRS best average (47.0) while meeting the SLO; Top2000 comparable quality but violates the SLO;")
	fmt.Fprintln(w, "       StreamingLLM collapses on retrieval tasks; full attention violates the SLO")
	return nil
}
