package vec

import "fmt"

// This file holds the blocked batch kernels of the zero-allocation decode
// path: scoring a query against many matrix rows at once, and accumulating
// weighted row sums, all into caller-provided buffers. The range kernels
// take the whole span through Matrix.RowSpan — one bounds check per range —
// and walk it in row blocks; none of them allocate.
//
// Every kernel is bitwise-identical to the per-row formulation it replaces
// (Dot per Row, Axpy per Row): blocks change how storage is addressed, not
// the floating-point accumulation order, so callers may mix blocked and
// per-row paths freely without results diverging.

// dotBlock is the number of rows scored per backing-array block.
const dotBlock = 4

// DotBatchRange computes out[i] = q · m.Row(lo+i) for i in [0, hi-lo),
// walking the backing array in 4-row blocks. out must have at least hi-lo
// entries; q must match the matrix width.
func DotBatchRange(q []float32, m *Matrix, lo, hi int, out []float32) {
	n := hi - lo
	if lo < 0 || hi < lo || hi > m.Rows() {
		panic(fmt.Sprintf("vec: dot batch range [%d,%d) of %d-row matrix", lo, hi, m.Rows()))
	}
	if len(q) != m.cols {
		panic(fmt.Sprintf("vec: dot batch query dim %d, matrix width %d", len(q), m.cols))
	}
	if len(out) < n {
		panic(fmt.Sprintf("vec: dot batch output has %d of %d entries", len(out), n))
	}
	d := m.cols
	span := m.RowSpan(lo, hi)
	i := 0
	for ; i+dotBlock <= n; i += dotBlock {
		off := i * d
		blk := span[off : off+dotBlock*d : off+dotBlock*d]
		out[i] = Dot(q, blk[:d])
		out[i+1] = Dot(q, blk[d:2*d])
		out[i+2] = Dot(q, blk[2*d:3*d])
		out[i+3] = Dot(q, blk[3*d:])
	}
	for ; i < n; i++ {
		off := i * d
		out[i] = Dot(q, span[off:off+d:off+d])
	}
}

// DotBatch computes out[i] = q · m.Row(i) for every row of m (q·Mᵀ). out
// must have at least m.Rows() entries.
func DotBatch(q []float32, m *Matrix, out []float32) {
	DotBatchRange(q, m, 0, m.Rows(), out)
}

// DotGather computes out[j] = q · m.Row(idx[j]) for every listed row. The
// rows are random-access, so no blocking applies, but the kernel still slices
// the backing array directly and performs no allocation. Indices must be in
// range; out must have at least len(idx) entries.
func DotGather(q []float32, m *Matrix, idx []int, out []float32) {
	if len(q) != m.cols {
		panic(fmt.Sprintf("vec: dot gather query dim %d, matrix width %d", len(q), m.cols))
	}
	if len(out) < len(idx) {
		panic(fmt.Sprintf("vec: dot gather output has %d of %d entries", len(out), len(idx)))
	}
	d := m.cols
	data := m.data
	for j, i := range idx {
		off := i * d
		out[j] = Dot(q, data[off:off+d:off+d])
	}
}

// WeightedSumRange accumulates out += Σ_i w[i] · m.Row(lo+i), the value mix
// of partial attention over a contiguous row range. len(w) must be hi-lo and
// len(out) must equal the matrix width. Accumulation order matches an Axpy
// per row in ascending order.
func WeightedSumRange(w []float32, m *Matrix, lo, hi int, out []float32) {
	if lo < 0 || hi < lo || hi > m.Rows() {
		panic(fmt.Sprintf("vec: weighted sum range [%d,%d) of %d-row matrix", lo, hi, m.Rows()))
	}
	if len(w) < hi-lo {
		panic(fmt.Sprintf("vec: weighted sum has %d weights for %d rows", len(w), hi-lo))
	}
	if len(out) != m.cols {
		panic(fmt.Sprintf("vec: weighted sum output dim %d, matrix width %d", len(out), m.cols))
	}
	d := m.cols
	span := m.RowSpan(lo, hi)
	for i := 0; i < hi-lo; i++ {
		off := i * d
		Axpy(w[i], span[off:off+d:off+d], out)
	}
}

// WeightedSumGather accumulates out += Σ_j w[j] · m.Row(idx[j]) over listed
// rows, in index order. len(w) must be at least len(idx); len(out) must
// equal the matrix width.
func WeightedSumGather(w []float32, m *Matrix, idx []int, out []float32) {
	if len(w) < len(idx) {
		panic(fmt.Sprintf("vec: weighted sum has %d weights for %d rows", len(w), len(idx)))
	}
	if len(out) != m.cols {
		panic(fmt.Sprintf("vec: weighted sum output dim %d, matrix width %d", len(out), m.cols))
	}
	d := m.cols
	data := m.data
	for j, i := range idx {
		off := i * d
		Axpy(w[j], data[off:off+d:off+d], out)
	}
}
