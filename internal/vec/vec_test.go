package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float32
		want float32
	}{
		{"empty", nil, nil, 0},
		{"single", []float32{2}, []float32{3}, 6},
		{"orthogonal", []float32{1, 0}, []float32{0, 1}, 0},
		{"unrolled boundary 4", []float32{1, 1, 1, 1}, []float32{1, 2, 3, 4}, 10},
		{"unrolled tail", []float32{1, 1, 1, 1, 1}, []float32{1, 2, 3, 4, 5}, 15},
		{"negative", []float32{-1, 2}, []float32{3, -4}, -11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if !almostEqual(got, want, 1e-4) {
			t.Fatalf("trial %d: Dot = %v, naive = %v", trial, got, want)
		}
	}
}

func TestScaledDot(t *testing.T) {
	a := []float32{1, 1, 1, 1}
	b := []float32{2, 2, 2, 2}
	want := float32(8.0 / 2.0) // dot=8, sqrt(4)=2
	if got := ScaledDot(a, b); got != want {
		t.Errorf("ScaledDot = %v, want %v", got, want)
	}
}

func TestSoftmaxBasic(t *testing.T) {
	logits := []float32{1, 2, 3}
	out := make([]float32, 3)
	lse := Softmax(logits, out)

	var sum float32
	for _, p := range out {
		if p < 0 || p > 1 {
			t.Fatalf("softmax output %v out of [0,1]", p)
		}
		sum += p
	}
	if !almostEqual(float64(sum), 1, 1e-5) {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax not monotone: %v", out)
	}
	wantLSE := LogSumExp(logits)
	if !almostEqual(lse, wantLSE, 1e-9) {
		t.Errorf("Softmax lse = %v, LogSumExp = %v", lse, wantLSE)
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Very large logits must not overflow.
	logits := []float32{1e30, 1e30, 1e30}
	out := make([]float32, 3)
	Softmax(logits, out)
	for i, p := range out {
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatalf("softmax[%d] = %v for huge logits", i, p)
		}
		if !almostEqual(float64(p), 1.0/3.0, 1e-5) {
			t.Errorf("softmax[%d] = %v, want 1/3", i, p)
		}
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	lse := Softmax(nil, nil)
	if !math.IsInf(lse, -1) {
		t.Errorf("Softmax(empty) lse = %v, want -Inf", lse)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	// Property: softmax sums to 1 and is shift-invariant.
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float32, len(raw))
		shifted := make([]float32, len(raw))
		for i, r := range raw {
			logits[i] = float32(r) / 100
			shifted[i] = logits[i] + 42.5
		}
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		Softmax(logits, a)
		Softmax(shifted, b)
		var sum float64
		for i := range a {
			sum += float64(a[i])
			if !almostEqual(float64(a[i]), float64(b[i]), 1e-4) {
				return false
			}
		}
		return almostEqual(sum, 1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp([]float32{0}); !almostEqual(got, 0, 1e-9) {
		t.Errorf("LogSumExp([0]) = %v, want 0", got)
	}
	// log(e^1 + e^1) = 1 + log 2
	if got := LogSumExp([]float32{1, 1}); !almostEqual(got, 1+math.Log(2), 1e-6) {
		t.Errorf("LogSumExp([1,1]) = %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(empty) = %v, want -Inf", got)
	}
}

func TestMaxArgmax(t *testing.T) {
	v, i := Max([]float32{3, -1, 7, 7, 2})
	if v != 7 || i != 2 {
		t.Errorf("Max = (%v, %d), want (7, 2)", v, i)
	}
	if got := Argmax([]float32{-5, -2, -9}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float32{3, 4}
	Normalize(x)
	if !almostEqual(float64(Norm2(x)), 1, 1e-6) {
		t.Errorf("norm after Normalize = %v", Norm2(x))
	}
	zero := []float32{0, 0}
	Normalize(zero) // must not NaN
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize(0) changed the vector: %v", zero)
	}
}

func TestAxpyScaleAdd(t *testing.T) {
	y := []float32{1, 2, 3}
	Axpy(2, []float32{1, 1, 1}, y)
	if y[0] != 3 || y[1] != 4 || y[2] != 5 {
		t.Errorf("Axpy result = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 {
		t.Errorf("Scale result = %v", y)
	}
	Add([]float32{1, 1, 1}, y)
	if y[0] != 2.5 {
		t.Errorf("Add result = %v", y)
	}
	Zero(y)
	if y[0] != 0 || y[2] != 0 {
		t.Errorf("Zero result = %v", y)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float32{1, 0}, []float32{2, 0}); !almostEqual(float64(got), 1, 1e-6) {
		t.Errorf("cos of parallel = %v", got)
	}
	if got := CosineSimilarity([]float32{1, 0}, []float32{0, 3}); !almostEqual(float64(got), 0, 1e-6) {
		t.Errorf("cos of orthogonal = %v", got)
	}
	if got := CosineSimilarity([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Errorf("cos with zero vector = %v, want 0", got)
	}
}

func TestL2Distance(t *testing.T) {
	if got := L2Distance([]float32{0, 0}, []float32{3, 4}); !almostEqual(float64(got), 5, 1e-6) {
		t.Errorf("L2 = %v, want 5", got)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.SetRow(0, []float32{1, 2, 3})
	m.SetRow(1, []float32{4, 5, 6})
	if m.Row(1)[2] != 6 {
		t.Errorf("Row(1)[2] = %v", m.Row(1)[2])
	}
	if m.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", m.Bytes())
	}
}

func TestMatrixAppendGrowsFromZeroValue(t *testing.T) {
	var m Matrix
	i := m.Append([]float32{1, 2})
	j := m.Append([]float32{3, 4})
	if i != 0 || j != 1 {
		t.Fatalf("append indices = %d, %d", i, j)
	}
	if m.Cols() != 2 || m.Rows() != 2 {
		t.Fatalf("shape after append = %dx%d", m.Rows(), m.Cols())
	}
	if m.Row(1)[0] != 3 {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
}

func TestMatrixAppendWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong-width append")
		}
	}()
	m := NewMatrix(1, 2)
	m.Append([]float32{1, 2, 3})
}

func TestMatrixSliceSharesStorage(t *testing.T) {
	m := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		m.SetRow(i, []float32{float32(i), float32(i)})
	}
	s := m.Slice(1, 3)
	if s.Rows() != 2 {
		t.Fatalf("slice rows = %d", s.Rows())
	}
	s.Row(0)[0] = 99
	if m.Row(1)[0] != 99 {
		t.Error("slice does not share storage")
	}
}

func TestMatrixSliceBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range slice")
		}
	}()
	NewMatrix(2, 2).Slice(0, 3)
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(1, 2)
	m.SetRow(0, []float32{1, 2})
	c := m.Clone()
	c.Row(0)[0] = 9
	if m.Row(0)[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMatrixFromData(t *testing.T) {
	m := MatrixFromData(2, []float32{1, 2, 3, 4})
	if m.Rows() != 2 || m.Row(1)[1] != 4 {
		t.Errorf("MatrixFromData wrong: rows=%d", m.Rows())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-multiple buffer")
		}
	}()
	MatrixFromData(3, []float32{1, 2, 3, 4})
}
