package metrics

import (
	"sync/atomic"
	"time"
)

// Endpoint enumerates the service operations the serving layer measures.
// The set is closed so per-endpoint counters can live in a fixed array of
// atomics: observation from concurrent request handlers never takes a lock,
// for the same reason QuantCounters are atomics — a shared mutex on the
// request path would reintroduce the serialization the sharded registry
// removed.
type Endpoint int

const (
	EPCreateSession Endpoint = iota
	EPPrefill
	EPUpdate
	EPAttention
	EPAttentionAll
	EPStep
	EPSteps
	EPStepStream
	EPStore
	EPCloseSession
	EPStats
	EPHealthz
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"create_session",
	"prefill",
	"update",
	"attention",
	"attention_all",
	"step",
	"steps",
	"step_stream",
	"store",
	"close_session",
	"stats",
	"healthz",
}

// String returns the endpoint's wire name (the action segment of its URL,
// or the operation name for create/close).
func (e Endpoint) String() string {
	if e < 0 || e >= numEndpoints {
		return "unknown"
	}
	return endpointNames[e]
}

// Endpoints lists every measured endpoint in declaration order.
func Endpoints() []Endpoint {
	out := make([]Endpoint, numEndpoints)
	for i := range out {
		out[i] = Endpoint(i)
	}
	return out
}

type endpointCounter struct {
	requests atomic.Int64
	errors   atomic.Int64
	nanos    atomic.Int64 // cumulative service time
	maxNanos atomic.Int64
}

// EndpointCounters measures request volume and service latency per
// endpoint. Safe for concurrent use; the zero value is ready.
type EndpointCounters struct {
	counters [numEndpoints]endpointCounter
}

// Observe records one request: which endpoint served it, whether it failed
// (a typed service error — wire-level encode failures are counted by the
// transport), and how long the service core spent on it.
func (c *EndpointCounters) Observe(e Endpoint, failed bool, d time.Duration) {
	if e < 0 || e >= numEndpoints {
		return
	}
	ec := &c.counters[e]
	ec.requests.Add(1)
	if failed {
		ec.errors.Add(1)
	}
	n := d.Nanoseconds()
	ec.nanos.Add(n)
	for {
		cur := ec.maxNanos.Load()
		if n <= cur || ec.maxNanos.CompareAndSwap(cur, n) {
			break
		}
	}
}

// EndpointSnapshot is a point-in-time copy of one endpoint's counters.
type EndpointSnapshot struct {
	// Endpoint is the wire name of the operation.
	Endpoint string `json:"endpoint"`
	// Requests counts every observed request, including failed ones.
	Requests int64 `json:"requests"`
	// Errors counts requests that returned a typed service error.
	Errors int64 `json:"errors"`
	// MeanMillis is the mean service time in milliseconds.
	MeanMillis float64 `json:"mean_ms"`
	// MaxMillis is the largest observed service time in milliseconds.
	MaxMillis float64 `json:"max_ms"`
}

// Snapshot returns the counters of every endpoint that has served at least
// one request, in declaration order.
func (c *EndpointCounters) Snapshot() []EndpointSnapshot {
	var out []EndpointSnapshot
	for i := range c.counters {
		ec := &c.counters[i]
		n := ec.requests.Load()
		if n == 0 {
			continue
		}
		out = append(out, EndpointSnapshot{
			Endpoint:   Endpoint(i).String(),
			Requests:   n,
			Errors:     ec.errors.Load(),
			MeanMillis: float64(ec.nanos.Load()) / float64(n) / 1e6,
			MaxMillis:  float64(ec.maxNanos.Load()) / 1e6,
		})
	}
	return out
}

// Requests returns the request count of one endpoint.
func (c *EndpointCounters) Requests(e Endpoint) int64 {
	if e < 0 || e >= numEndpoints {
		return 0
	}
	return c.counters[e].requests.Load()
}
