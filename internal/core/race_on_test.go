//go:build race

package core

// raceEnabled reports that this binary was built with the race detector,
// which deliberately randomizes sync.Pool reuse — allocation counts are not
// meaningful there.
const raceEnabled = true
