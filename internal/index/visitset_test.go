package index

import (
	"container/heap"
	"math/rand"
	"testing"
)

func TestVisitSetBasics(t *testing.T) {
	var v VisitSet
	v.Reset(8)
	if v.Visited(3) {
		t.Fatal("fresh set reports 3 visited")
	}
	if !v.Visit(3) {
		t.Fatal("first Visit(3) must report true")
	}
	if v.Visit(3) {
		t.Fatal("second Visit(3) must report false")
	}
	if !v.Visited(3) || v.Visited(4) {
		t.Fatal("membership wrong after Visit")
	}
	v.Add(4)
	if !v.Visited(4) {
		t.Fatal("Add(4) did not mark 4")
	}
	v.Reset(8)
	if v.Visited(3) || v.Visited(4) {
		t.Fatal("Reset must clear the set")
	}
}

func TestVisitSetGrowAndEpochWrap(t *testing.T) {
	var v VisitSet
	v.Reset(4)
	v.Add(2)
	v.Reset(16) // grow resets epoch machinery
	if v.Visited(2) {
		t.Fatal("grown set reports stale membership")
	}
	v.Add(15)
	// Force the epoch to wrap: membership from the pre-wrap epoch must not
	// leak into the post-wrap one.
	v.epoch = ^uint32(0)
	v.Add(1)
	v.Reset(16)
	if v.Visited(1) || v.Visited(15) {
		t.Fatal("epoch wrap leaked stale membership")
	}
}

func TestVisitSetResetDoesNotAllocateWarm(t *testing.T) {
	var v VisitSet
	v.Reset(1024)
	allocs := testing.AllocsPerRun(50, func() {
		v.Reset(1024)
		v.Visit(17)
		v.Visit(900)
	})
	if allocs != 0 {
		t.Fatalf("warm VisitSet allocated %.1f times per run, want 0", allocs)
	}
}

// TestManualHeapMatchesContainerHeap asserts PushValue/PopValue produce the
// exact element orderings of container/heap, including ties — downstream
// search results are compared bitwise across code paths, so the manual sift
// must not even reorder equal scores differently.
func TestManualHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		cands := make([]Candidate, n)
		for i := range cands {
			// Coarse quantization forces plenty of score ties.
			cands[i] = Candidate{ID: int32(i), Score: float32(rng.Intn(8))}
		}

		var manual MinHeap
		ref := make(MinHeap, 0, n)
		for _, c := range cands {
			manual.PushValue(c)
			heap.Push(&ref, c)
		}
		for i := range manual {
			if manual[i] != ref[i] {
				t.Fatalf("trial %d: heap layouts diverge at %d: %v vs %v", trial, i, manual[i], ref[i])
			}
		}
		for ref.Len() > 0 {
			want := heap.Pop(&ref).(Candidate)
			if got := manual.PopValue(); got != want {
				t.Fatalf("trial %d: PopValue = %v, heap.Pop = %v", trial, got, want)
			}
		}

		var manualMax MaxHeap
		refMax := make(MaxHeap, 0, n)
		for _, c := range cands {
			manualMax.PushValue(c)
			heap.Push(&refMax, c)
		}
		for refMax.Len() > 0 {
			want := heap.Pop(&refMax).(Candidate)
			if got := manualMax.PopValue(); got != want {
				t.Fatalf("trial %d: max PopValue = %v, heap.Pop = %v", trial, got, want)
			}
		}
	}
}

func TestSortedIntoReusesBuffer(t *testing.T) {
	buf := make([]Candidate, 0, 64)
	var h MinHeap
	for i := 0; i < 32; i++ {
		h.PushBounded(Candidate{ID: int32(i), Score: float32(i % 7)}, 16)
	}
	out := h.SortedInto(buf)
	if len(out) != 16 {
		t.Fatalf("SortedInto returned %d candidates, want 16", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("SortedInto must reuse the provided buffer's storage")
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Score < out[i].Score {
			t.Fatalf("SortedInto not best-first at %d: %v then %v", i, out[i-1], out[i])
		}
	}
}

func TestHeapOpsDoNotAllocateWarm(t *testing.T) {
	h := make(MinHeap, 0, 128)
	buf := make([]Candidate, 0, 128)
	allocs := testing.AllocsPerRun(50, func() {
		h = h[:0]
		for i := 0; i < 128; i++ {
			h.PushBounded(Candidate{ID: int32(i), Score: float32(i * 31 % 17)}, 64)
		}
		buf = h.SortedInto(buf)
	})
	if allocs != 0 {
		t.Fatalf("warm heap ops allocated %.1f times per run, want 0", allocs)
	}
}
