package baselines

import (
	"time"

	"repro/internal/attention"
	"repro/internal/model"
	"repro/internal/vec"
)

// Prefill models the w/o-reuse baseline of Figure 10: the full O(n²)
// causal prefill an inference engine pays when a long context's KV cache
// cannot be reused. The attention work is actually executed (streaming
// FlashAttention-style, so memory stays O(n·d)) for one representative
// (layer, query-head) pair; layers and heads are embarrassingly parallel
// and identical in cost, so the measured time scales by Layers × QHeads.
type Prefill struct {
	Model *model.Model
	// Stride computes attention for every Stride-th query position and
	// scales the measurement accordingly — the quadratic term is preserved
	// while keeping wall-clock time tolerable at long contexts. 1 means
	// exact. Defaults to 1.
	Stride int
}

// TTFT runs the prefill over doc and returns the modelled time to first
// token.
func (p *Prefill) TTFT(doc *model.Document) time.Duration {
	stride := p.Stride
	if stride < 1 {
		stride = 1
	}
	m := p.Model
	mc := m.Config()
	n := doc.Len()
	if n == 0 {
		return 0
	}
	const layer, kvHead = 0, 0

	keys := vec.NewMatrix(n, mc.HeadDim)
	vals := vec.NewMatrix(n, mc.HeadDim)
	for i := 0; i < n; i++ {
		keys.SetRow(i, m.KeyVector(doc, i, layer, kvHead))
		vals.SetRow(i, m.ValueVector(doc, i, layer, kvHead))
	}

	start := time.Now()
	positions := 0
	for i := 0; i < n; i += stride {
		q := m.QueryVector(doc, layer, 0, model.QuerySpec{
			FocusTopics: []int{doc.Tokens[i].Topic},
			Step:        i,
		})
		// Causal attention over the prefix [0, i].
		_ = attention.FullOnline(q, keys.Slice(0, i+1), vals.Slice(0, i+1))
		positions++
	}
	elapsed := time.Since(start)

	// Scale back up: strided positions stand for all n, one (layer, head)
	// pair stands for Layers × QHeads.
	scale := float64(n) / float64(positions) * float64(mc.Layers) * float64(mc.QHeads)
	return time.Duration(float64(elapsed) * scale)
}
