# Single source of truth for build/test/bench invocations; CI runs these
# exact targets so local dev and the pipeline never drift.

GO ?= go

.PHONY: all build test race bench bench-alloc bench-tiered bench-quant bench-serving bench-serving-grpc bench-batching bench-prefix bench-ctxpar bench-cluster smoke-cluster proto cover fuzz fmt vet

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-mode sweep of the concurrent layers (plus everything else; the serve,
# core and attention packages are the ones exercising the new locking).
race:
	$(GO) test -race ./...

# Full benchmark pass; use BENCHTIME=1x for the CI smoke run.
BENCHTIME ?= 1s
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run '^$$' ./...

# Allocation experiment: legacy vs pooled-scratch decode, tokens/sec and
# allocs/op, with a machine-readable report for the cross-PR perf trail.
ALLOC_JSON ?= BENCH_PR2.json
bench-alloc:
	$(GO) run ./cmd/alayabench -exp alloc -context 2048 -trials 2 -json $(ALLOC_JSON)

# Tiered-store experiment: resuming from the disk spill tier vs cold
# re-import (re-prefill + index rebuild), with the PR 3 perf artefact.
TIERED_JSON ?= BENCH_PR3.json
bench-tiered:
	$(GO) run ./cmd/alayabench -exp tiered -context 2048 -trials 2 -json $(TIERED_JSON)

# SQ8 quantized key plane experiment: fp32 vs int8 fused-scoring decode
# throughput, resident + spilled key bytes, recall@32 after the fp32
# rerank, with the PR 4 perf artefact.
QUANT_JSON ?= BENCH_PR4.json
bench-quant:
	$(GO) run ./cmd/alayabench -exp quant -context 2048 -trials 2 -json $(QUANT_JSON)

# Serving protocol experiment: v1 JSON per-layer round trips vs the v2
# one-round-trip step over the binary tensor wire, through the SDK over
# HTTP loopback, with the PR 5 perf artefact. Context 512 keeps attention
# compute small so the measurement isolates protocol cost (round trips +
# codec), which is what this experiment is about.
SERVING_JSON ?= BENCH_PR5.json
bench-serving:
	$(GO) run ./cmd/alayabench -exp serving -context 512 -trials 3 -json $(SERVING_JSON)

# gRPC transport experiment: the v2 binary decode path over the h2c gRPC
# wire vs the binary HTTP baseline, both listeners fronting one Service,
# with the PR 8 perf artefact. Same scale rationale as bench-serving:
# small context isolates transport cost.
GRPC_JSON ?= BENCH_PR8.json
bench-serving-grpc:
	$(GO) run ./cmd/alayabench -exp serving-grpc -context 512 -trials 3 -json $(GRPC_JSON)

# Continuous-batching experiment: serial per-request v2 step (the PR 5
# execution model) vs the scheduled step/steps/stream modes at 1/4/16
# concurrent sessions, with the PR 6 perf artefact. Tiny model geometry
# (1 layer x 2 GQA heads, context 64) keeps per-step attention compute
# small so the measurement isolates serving overhead — wave batching and
# round-trip amortization — which is what this experiment is about.
BATCHING_JSON ?= BENCH_PR6.json
bench-batching:
	$(GO) run ./cmd/alayabench -exp batching -context 64 -layers 1 -qheads 2 -kvheads 1 -trials 5 -json $(BATCHING_JSON)

# Prefix-sharing experiment: 16 copy-on-write sessions over one shared
# 2048-token prefix vs single-context and materialized footprints, plus
# trie lookup scaling against the resident-store size, with the PR 7 perf
# artefact. The run itself enforces the <= 1.25x resident-bytes bound.
PREFIX_JSON ?= BENCH_PR7.json
bench-prefix:
	$(GO) run ./cmd/alayabench -exp prefix -context 2048 -trials 2 -json $(PREFIX_JSON)

# Context-parallelism experiment: per-context index-build latency and
# decode throughput across range-shard counts [1,2,4,8] at a long context,
# graph recall parity of sharded probes, and the short-context guard, with
# the PR 9 perf artefact. 1 layer x 2 query heads x 1 kv head gives one
# index group, so the 1-shard build is genuinely serial and the sweep
# isolates what sharding buys rather than job-level fan-out across groups.
CTXPAR_JSON ?= BENCH_PR9.json
bench-ctxpar:
	$(GO) run ./cmd/alayabench -exp ctxpar -context 4096 -layers 1 -qheads 2 -kvheads 1 -trials 2 -json $(CTXPAR_JSON)

# Cluster routing experiment: decode step latency through the shard
# router over 1/2/4 in-process gRPC nodes vs the local service, plus a
# range-sharded fan-out row, with the PR 10 perf artefact. Same scale
# rationale as bench-serving: small context isolates routing cost (the
# extra hop, fan-out, and the log-sum-exp merge).
CLUSTER_JSON ?= BENCH_PR10.json
bench-cluster:
	$(GO) run ./cmd/alayabench -exp cluster -context 512 -trials 3 -json $(CLUSTER_JSON)

# Cluster smoke: two real alayad nodes plus a shard router on loopback —
# range-sharded placement, prefill through the router, per-node health
# via alayactl nodes, clean close.
smoke-cluster:
	sh scripts/smoke_cluster.sh

# Regenerate the committed gRPC protobuf artefacts (alaya.pb.go and
# alaya.proto) from the descriptor table in the generator; CI fails if
# the committed files drift from the generator's output.
proto:
	$(GO) run ./internal/serve/grpc/pb/gen -dir internal/serve/grpc/pb

# Coverage ratchet: fail if total statement coverage falls below COVER_MIN.
COVER_MIN ?= 80.0
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	echo "total statement coverage: $$total% (floor: $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }' || \
		{ echo "coverage fell below the ratchet floor"; exit 1; }

# Short coverage-guided fuzz pass over the spill-file parser (the seeds
# also run as ordinary tests in `make test`).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/storage/vfs -run '^FuzzOpen$$' -fuzz '^FuzzOpen$$' -fuzztime $(FUZZTIME)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
