package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/index/graph"
	"repro/internal/model"
)

func init() {
	register("prefix", "copy-on-write prefix sharing: N sessions over one shared prefix, resident bytes vs unshared stores, and trie lookup scaling vs context count", runPrefix)
}

// prefixSessions is how many divergent sessions share the one prefix — the
// many-conversations-over-one-system-prompt shape the CoW store targets.
const prefixSessions = 16

// prefixTail is each session's divergent suffix: a handful of generated
// turns against a long shared prompt, scaled with the prefix so the
// shared fraction is comparable across -context settings.
func prefixTail(prefixLen int) int {
	if n := prefixLen / 128; n > 8 {
		return n
	}
	return 8
}

// PrefixReportData is the machine-readable artefact of the prefix-sharing
// experiment (written to BENCH_PR7.json by CI): resident bytes for N
// copy-on-write stores over one shared prefix against the single context
// and against N materialized copies, plus the prefix-trie lookup cost at
// two resident-store sizes — flat when the lookup is no longer a linear
// scan over every stored context.
type PrefixReportData struct {
	PrefixLen int `json:"prefix_len"`
	Sessions  int `json:"sessions"`
	TailLen   int `json:"tail_len"`
	Layers    int `json:"layers"`
	// SingleContextBytes is the resident footprint of the shared prefix
	// context alone (KV + indexes).
	SingleContextBytes int64 `json:"single_context_bytes"`
	// SharedResidentBytes is the footprint after all sessions stored
	// copy-on-write: base + N divergent tails.
	SharedResidentBytes int64 `json:"shared_resident_bytes"`
	// SharedVsSingle is SharedResidentBytes / SingleContextBytes; the CoW
	// acceptance bound is 1.25.
	SharedVsSingle float64 `json:"shared_vs_single"`
	// SharedPrefixBytes is the base bytes the stored tails reference
	// without owning (DB.SharingStats).
	SharedPrefixBytes int64 `json:"shared_prefix_bytes"`
	// UnsharedBytesEst is what N materialized full copies would hold
	// resident: the base plus N times one measured full import.
	UnsharedBytesEst int64 `json:"unshared_bytes_est"`
	// BytesSavedRatio is UnsharedBytesEst / SharedResidentBytes.
	BytesSavedRatio float64 `json:"bytes_saved_ratio"`
	// CoWStoreMS is the mean Store latency on the copy-on-write path.
	CoWStoreMS float64 `json:"cow_store_ms"`
	// UnsharedStoreMS is one full materialization + index build — the cost
	// every store paid before copy-on-write.
	UnsharedStoreMS float64 `json:"unshared_store_ms"`
	// Lookup* measure CreateSession (trie lookup + session setup) over the
	// shared document at two resident-store sizes; near-flat scaling shows
	// the lookup is not O(contexts).
	LookupContextsSmall int     `json:"lookup_contexts_small"`
	LookupContextsLarge int     `json:"lookup_contexts_large"`
	LookupSmallUS       float64 `json:"lookup_small_us"`
	LookupLargeUS       float64 `json:"lookup_large_us"`
	// LookupScaling is LookupLargeUS / LookupSmallUS.
	LookupScaling float64 `json:"lookup_scaling"`
}

// prefixDB builds an unbounded DB at scale s.
func prefixDB(s Scale) (*core.DB, error) {
	return core.New(core.Config{
		Model:         model.New(s.Model),
		Window:        attention.Window{Sinks: 4, Recent: 16},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       s.Workers,
	})
}

// lookupTime measures mean CreateSession+Close over doc.
func lookupTime(db *core.DB, doc *model.Document, reps int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		sess, reused := db.CreateSession(doc)
		sess.Close()
		if reused != doc.Len() {
			return 0, fmt.Errorf("bench: lookup reused %d of %d", reused, doc.Len())
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

// PrefixReport measures prefix sharing at scale s: s.ContextLen is the
// shared prefix length.
func PrefixReport(s Scale) (*PrefixReportData, error) {
	s.Defaults()
	base := model.NewFiller(s.Seed, s.ContextLen, 64, 32)

	tailLen := prefixTail(s.ContextLen)

	db, err := prefixDB(s)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.ImportDoc(base); err != nil {
		return nil, err
	}
	singleBytes := db.StoredBytes()

	// N sessions diverge from the shared prefix and store copy-on-write.
	docs := make([]*model.Document, prefixSessions)
	var cowStore time.Duration
	for i := range docs {
		doc := &model.Document{Seed: base.Seed, Tokens: append([]model.Token(nil), base.Tokens...)}
		for j := 0; j < tailLen; j++ {
			doc.Append(model.Token{Topic: 100 + i, Payload: j % 32})
		}
		docs[i] = doc
		sess, reused := db.CreateSession(doc)
		if reused != s.ContextLen {
			sess.Close()
			return nil, fmt.Errorf("bench: session %d reused %d of %d", i, reused, s.ContextLen)
		}
		sess.PrefillRemaining()
		start := time.Now()
		ctx, err := db.Store(sess)
		cowStore += time.Since(start)
		sess.Close()
		if err != nil {
			return nil, err
		}
		if ctx.Base() == nil {
			return nil, fmt.Errorf("bench: store %d did not share its prefix", i)
		}
	}
	sharedBytes := db.StoredBytes()
	ratio := float64(sharedBytes) / float64(singleBytes)
	if ratio > 1.25 {
		return nil, fmt.Errorf("bench: %d shared sessions hold %.3fx the single-context bytes, bound is 1.25x",
			prefixSessions, ratio)
	}
	st := db.SharingStats()

	// Lookup scaling: the same CreateSession against a small and a much
	// larger resident store. Fillers share nothing with the probe document,
	// so a linear scan would pay for each of them; the trie does not.
	smallContexts := db.NumContexts()
	reps := 8 * s.Trials
	lookupSmall, err := lookupTime(db, docs[0], reps)
	if err != nil {
		return nil, err
	}
	const largeContexts = 128
	for i := smallContexts; i < largeContexts; i++ {
		if _, err := db.ImportDoc(model.NewFiller(s.Seed+uint64(1000+i), 128, 16, 32)); err != nil {
			return nil, err
		}
	}
	lookupLarge, err := lookupTime(db, docs[0], reps)
	if err != nil {
		return nil, err
	}

	// Unshared baseline: one full materialized import (the pre-CoW store
	// path) prices what each of the N stores would have cost and held.
	db2, err := prefixDB(s)
	if err != nil {
		return nil, err
	}
	defer db2.Close()
	start := time.Now()
	if _, err := db2.ImportDoc(docs[0]); err != nil {
		return nil, err
	}
	unsharedStore := time.Since(start)
	perFullCtx := db2.StoredBytes()
	unsharedEst := singleBytes + int64(prefixSessions)*perFullCtx

	return &PrefixReportData{
		PrefixLen:           s.ContextLen,
		Sessions:            prefixSessions,
		TailLen:             tailLen,
		Layers:              s.Model.Layers,
		SingleContextBytes:  singleBytes,
		SharedResidentBytes: sharedBytes,
		SharedVsSingle:      ratio,
		SharedPrefixBytes:   st.SharedPrefixBytes,
		UnsharedBytesEst:    unsharedEst,
		BytesSavedRatio:     float64(unsharedEst) / float64(sharedBytes),
		CoWStoreMS:          1000 * cowStore.Seconds() / prefixSessions,
		UnsharedStoreMS:     1000 * unsharedStore.Seconds(),
		LookupContextsSmall: smallContexts,
		LookupContextsLarge: largeContexts,
		LookupSmallUS:       float64(lookupSmall.Nanoseconds()) / 1000,
		LookupLargeUS:       float64(lookupLarge.Nanoseconds()) / 1000,
		LookupScaling:       float64(lookupLarge) / float64(lookupSmall),
	}, nil
}

// WritePrefixTable renders the report as the experiment's textual artefact.
func WritePrefixTable(data *PrefixReportData, w io.Writer) {
	tb := table{header: []string{"store path", "resident bytes", "vs single", "store ms"}}
	tb.add("single context", fmt.Sprintf("%d", data.SingleContextBytes), "1.00x", "")
	tb.add(fmt.Sprintf("%d sessions, copy-on-write", data.Sessions),
		fmt.Sprintf("%d", data.SharedResidentBytes), fmt.Sprintf("%.2fx", data.SharedVsSingle), f2(data.CoWStoreMS))
	tb.add(fmt.Sprintf("%d sessions, materialized (est)", data.Sessions),
		fmt.Sprintf("%d", data.UnsharedBytesEst), fmt.Sprintf("%.2fx", float64(data.UnsharedBytesEst)/float64(data.SingleContextBytes)), f2(data.UnsharedStoreMS))
	tb.write(w)
	fmt.Fprintf(w, "\nshared prefix: %d tokens, %d-token tails; %d bytes referenced without copying (%.1fx saved)\n",
		data.PrefixLen, data.TailLen, data.SharedPrefixBytes, data.BytesSavedRatio)
	fmt.Fprintf(w, "lookup: %.1fus at %d contexts -> %.1fus at %d contexts (%.2fx; trie, not a linear scan)\n",
		data.LookupSmallUS, data.LookupContextsSmall, data.LookupLargeUS, data.LookupContextsLarge, data.LookupScaling)
}

func runPrefix(s Scale, w io.Writer) error {
	data, err := PrefixReport(s)
	if err != nil {
		return err
	}
	WritePrefixTable(data, w)
	return nil
}
