package grpc

import (
	"bytes"
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/grpc/pb"
)

// ClientConn is a minimal gRPC client over net/http's h2c transport:
// unary Invoke plus server-streaming OpenStream, enough to drive the
// AlayaDB service. One ClientConn is safe for concurrent use and
// multiplexes every RPC over its HTTP/2 connection pool.
type ClientConn struct {
	base    string // scheme://host:port
	hc      *http.Client
	maxRecv int64
}

// DialOption configures a ClientConn.
type DialOption func(*ClientConn)

// WithDialMaxRecvBytes bounds one received message.
func WithDialMaxRecvBytes(n int64) DialOption {
	return func(c *ClientConn) {
		if n > 0 {
			c.maxRecv = n
		}
	}
}

// WithHTTPClient substitutes the underlying HTTP client — it must speak
// unencrypted HTTP/2 for real listeners (Dial's default does), or be a
// test client whose transport carries h2c some other way.
func WithHTTPClient(hc *http.Client) DialOption {
	return func(c *ClientConn) { c.hc = hc }
}

// WithDialTLS dials the target over TLS (scheme https) using cfg, which
// may be nil for the host defaults. ALPN negotiates h2 — the encrypted
// twin of the cleartext h2c default. Implies the grpcs:// scheme when
// the target carried none.
func WithDialTLS(cfg *tls.Config) DialOption {
	return func(c *ClientConn) {
		if cfg != nil {
			cfg = cfg.Clone()
		}
		protocols := new(http.Protocols)
		protocols.SetHTTP2(true)
		c.hc = &http.Client{Transport: &http.Transport{
			Protocols:         protocols,
			TLSClientConfig:   cfg,
			ForceAttemptHTTP2: true,
		}}
		if strings.HasPrefix(c.base, "http://") {
			c.base = "https://" + strings.TrimPrefix(c.base, "http://")
		}
	}
}

// Dial returns a connection to a gRPC server at target ("host:port",
// "http://host:port", or "grpcs://host:port" for TLS+ALPN). There is no
// handshake at dial time — like gRPC proper, connection establishment is
// lazy.
func Dial(target string, opts ...DialOption) *ClientConn {
	var wantTLS bool
	switch {
	case strings.HasPrefix(target, "grpcs://"):
		target = "https://" + strings.TrimPrefix(target, "grpcs://")
		wantTLS = true
	case strings.HasPrefix(target, "grpc://"):
		target = "http://" + strings.TrimPrefix(target, "grpc://")
	case strings.HasPrefix(target, "https://"):
		wantTLS = true
	case !strings.Contains(target, "://"):
		target = "http://" + target
	}
	protocols := new(http.Protocols)
	protocols.SetUnencryptedHTTP2(true)
	c := &ClientConn{
		base:    strings.TrimSuffix(target, "/"),
		hc:      &http.Client{Transport: &http.Transport{Protocols: protocols}},
		maxRecv: DefaultMaxRecvBytes,
	}
	if wantTLS {
		WithDialTLS(nil)(c)
	}
	for _, fn := range opts {
		fn(c)
	}
	return c
}

// Target returns the base URL the connection dials.
func (c *ClientConn) Target() string { return c.base }

// unavailableErr wraps a transport-level failure — a dead dial, a reset
// connection, a load-shedding 503 — as the typed UNAVAILABLE status, so
// callers branch on one error shape whether the node refused at the TCP,
// HTTP, or gRPC layer.
func unavailableErr(format string, args ...interface{}) *StatusError {
	return &StatusError{
		Code:    CodeUnavailable,
		Kind:    serve.KindUnavailable,
		Message: fmt.Sprintf(format, args...),
	}
}

// Close releases idle connections.
func (c *ClientConn) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// newRequest builds the POST for one RPC, encoding in as the body.
func (c *ClientConn) newRequest(ctx context.Context, method string, in pb.Message) (*http.Request, func(), error) {
	buf := marshalMessage(in)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+method, bytes.NewReader(buf))
	if err != nil {
		putMsgBuf(buf)
		return nil, nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	req.Header.Set("TE", "trailers")
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(timeoutHeader, encodeTimeout(time.Until(dl)))
	}
	return req, func() { putMsgBuf(buf) }, nil
}

// statusOf extracts the gRPC status triple from a header or trailer set;
// ok is false when no grpc-status is present there.
func statusOf(h http.Header) (err error, ok bool) {
	v := h.Get(statusTrailer)
	if v == "" {
		return nil, false
	}
	code, cerr := strconv.Atoi(v)
	if cerr != nil || code < 0 {
		return fmt.Errorf("grpc: malformed grpc-status %q", v), true
	}
	if Code(code) == CodeOK {
		return nil, true
	}
	st := &StatusError{
		Code:    Code(code),
		Message: decodeGRPCMessage(h.Get(messageTrailer)),
		Kind:    serve.Kind(h.Get(KindTrailer)),
	}
	if st.Kind == "" {
		st.Kind = KindForCode(st.Code)
	}
	return st, true
}

// checkResponse validates the HTTP layer of a gRPC response and surfaces
// a headers-level (trailers-only) status if present.
func checkResponse(resp *http.Response) error {
	if resp.StatusCode != http.StatusOK {
		// A non-200 never came from the gRPC layer (which always answers
		// 200 + trailers): it is a proxy or server shedding load. Surface
		// the retryable ones as typed UNAVAILABLE.
		switch resp.StatusCode {
		case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
			return unavailableErr("grpc: transport error: HTTP %s", resp.Status)
		case http.StatusTooManyRequests:
			return &StatusError{
				Code:    CodeResourceExhausted,
				Kind:    serve.KindOverloaded,
				Message: fmt.Sprintf("grpc: transport error: HTTP %s", resp.Status),
			}
		}
		return fmt.Errorf("grpc: transport error: HTTP %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !isGRPCContentType(ct) {
		return fmt.Errorf("grpc: response content-type %q is not gRPC", ct)
	}
	if err, ok := statusOf(resp.Header); ok {
		// Trailers-only response: the status arrived in the header block.
		if err == nil {
			return io.EOF // OK status with no messages
		}
		return err
	}
	return nil
}

// Invoke performs one unary RPC, decoding the single response message
// into out. Non-OK statuses return *StatusError.
func (c *ClientConn) Invoke(ctx context.Context, method string, in, out pb.Message) error {
	req, done, err := c.newRequest(ctx, method, in)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	done()
	if err != nil {
		return unavailableErr("grpc: %s: dial %s: %v", method, c.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if err := checkResponse(resp); err != nil {
		if err == io.EOF {
			return fmt.Errorf("grpc: %s: OK status with no response message", method)
		}
		return err
	}

	buf := getMsgBuf()
	defer putMsgBuf(buf)
	buf, err = readMessage(resp.Body, buf, c.maxRecv)
	if err == io.EOF {
		// No message: the outcome is in the trailers (an error status).
		if terr, ok := statusOf(resp.Trailer); ok && terr != nil {
			return terr
		}
		return fmt.Errorf("grpc: %s: response ended without message or status", method)
	}
	if err != nil {
		return err
	}
	if uerr := out.UnmarshalProto(buf); uerr != nil {
		return fmt.Errorf("grpc: %s: bad response proto: %v", method, uerr)
	}
	// Drain to the trailers and check the authoritative status.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	terr, ok := statusOf(resp.Trailer)
	if !ok {
		return fmt.Errorf("grpc: %s: server sent no grpc-status", method)
	}
	return terr
}

// ClientStream reads the messages of one server-streaming RPC.
type ClientStream struct {
	method string
	resp   *http.Response
	buf    []byte
	max    int64
	done   bool
}

// OpenStream starts a server-streaming RPC. The returned stream must be
// closed. An RPC the server failed before streaming surfaces on the
// first Recv.
func (c *ClientConn) OpenStream(ctx context.Context, method string, in pb.Message) (*ClientStream, error) {
	req, done, err := c.newRequest(ctx, method, in)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	done()
	if err != nil {
		return nil, unavailableErr("grpc: %s: dial %s: %v", method, c.base, err)
	}
	if err := checkResponse(resp); err != nil && err != io.EOF {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, err
	}
	return &ClientStream{method: method, resp: resp, buf: getMsgBuf(), max: c.maxRecv}, nil
}

// Recv decodes the next streamed message into out. The end of the
// stream is io.EOF when the server finished OK, or the *StatusError it
// finished with.
func (s *ClientStream) Recv(out pb.Message) error {
	if s.done {
		return io.EOF
	}
	var err error
	s.buf, err = readMessage(s.resp.Body, s.buf[:0], s.max)
	if err == io.EOF {
		s.done = true
		if terr, ok := statusOf(s.resp.Trailer); ok {
			if terr != nil {
				return terr
			}
			return io.EOF
		}
		return fmt.Errorf("grpc: %s: stream ended without grpc-status", s.method)
	}
	if err != nil {
		s.done = true
		return err
	}
	if uerr := out.UnmarshalProto(s.buf); uerr != nil {
		s.done = true
		return fmt.Errorf("grpc: %s: bad stream message: %v", s.method, uerr)
	}
	return nil
}

// Close releases the stream; safe after EOF and on abandonment
// mid-stream (the server sees the RPC cancelled).
func (s *ClientStream) Close() error {
	if s.buf != nil {
		putMsgBuf(s.buf)
		s.buf = nil
	}
	io.Copy(io.Discard, s.resp.Body)
	return s.resp.Body.Close()
}
