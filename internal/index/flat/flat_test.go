package flat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/vec"
)

func randomKeys(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Row(i)[j] = rng.Float32()*2 - 1
		}
	}
	return m
}

// naiveTopK is the reference implementation.
func naiveTopK(q []float32, keys *vec.Matrix, k int) []index.Candidate {
	n := keys.Rows()
	all := make([]index.Candidate, n)
	for i := 0; i < n; i++ {
		all[i] = index.Candidate{ID: int32(i), Score: vec.Dot(q, keys.Row(i))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	if k > n {
		k = n
	}
	return all[:k]
}

func TestTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, 4} {
		for _, n := range []int{1, 7, 100, 5000} {
			keys := randomKeys(rng, n, 16)
			x := New(keys, workers)
			q := make([]float32, 16)
			for j := range q {
				q[j] = rng.Float32()*2 - 1
			}
			for _, k := range []int{1, 5, n} {
				got := x.TopK(q, k)
				want := naiveTopK(q, keys, k)
				if len(got) != len(want) {
					t.Fatalf("workers=%d n=%d k=%d: got %d candidates, want %d", workers, n, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Score != want[i].Score {
						t.Fatalf("workers=%d n=%d k=%d: rank %d score %v != %v",
							workers, n, k, i, got[i].Score, want[i].Score)
					}
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randomKeys(rng, 10, 8)
	x := New(keys, 1)
	q := make([]float32, 8)
	if got := x.TopK(q, 0); got != nil {
		t.Errorf("TopK(0) = %v", got)
	}
	if got := x.TopK(q, 100); len(got) != 10 {
		t.Errorf("TopK(k>n) returned %d", len(got))
	}
	if x.Len() != 10 {
		t.Errorf("Len = %d", x.Len())
	}
}

func TestDIPRExactness(t *testing.T) {
	// Property: DIPR returns exactly the candidates within beta of the max.
	rng := rand.New(rand.NewSource(3))
	keys := randomKeys(rng, 500, 8)
	for _, workers := range []int{1, 4} {
		x := New(keys, workers)
		f := func(qi [8]int8, betaRaw uint8) bool {
			q := make([]float32, 8)
			for j := range q {
				q[j] = float32(qi[j]) / 16
			}
			beta := float32(betaRaw) / 64
			got, best := x.DIPR(q, beta)
			// Reference: compute all scores.
			inSet := make(map[int32]bool, len(got))
			prev := float32(1e30)
			for _, c := range got {
				if c.Score > prev {
					return false // not sorted best-first
				}
				prev = c.Score
				inSet[c.ID] = true
			}
			trueBest := vec.Dot(q, keys.Row(0))
			for i := 1; i < 500; i++ {
				if s := vec.Dot(q, keys.Row(i)); s > trueBest {
					trueBest = s
				}
			}
			if trueBest != best {
				return false
			}
			for i := 0; i < 500; i++ {
				s := vec.Dot(q, keys.Row(i))
				if (s >= best-beta) != inSet[int32(i)] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

func TestDIPRBetaZeroReturnsMaxOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := randomKeys(rng, 200, 8)
	x := New(keys, 1)
	q := make([]float32, 8)
	for j := range q {
		q[j] = rng.Float32()
	}
	got, best := x.DIPR(q, 0)
	if len(got) < 1 {
		t.Fatal("DIPR(0) returned nothing")
	}
	if got[0].Score != best {
		t.Errorf("top score %v != best %v", got[0].Score, best)
	}
	for _, c := range got {
		if c.Score != best {
			t.Errorf("beta=0 returned non-max candidate score %v (best %v)", c.Score, best)
		}
	}
}

func TestDIPRFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := randomKeys(rng, 300, 8)
	x := New(keys, 1)
	q := make([]float32, 8)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	limit := 120
	got, best := x.DIPRFiltered(q, 0.5, limit)
	for _, c := range got {
		if int(c.ID) >= limit {
			t.Fatalf("filtered DIPR returned id %d >= limit %d", c.ID, limit)
		}
	}
	// best must be the max within the limit only.
	trueBest := vec.Dot(q, keys.Row(0))
	for i := 1; i < limit; i++ {
		if s := vec.Dot(q, keys.Row(i)); s > trueBest {
			trueBest = s
		}
	}
	if best != trueBest {
		t.Errorf("filtered best = %v, want %v", best, trueBest)
	}
}

func TestDIPREmptyIndex(t *testing.T) {
	x := New(vec.NewMatrix(0, 4), 1)
	got, _ := x.DIPR([]float32{1, 2, 3, 4}, 1)
	if got != nil {
		t.Errorf("DIPR on empty = %v", got)
	}
}

func TestParallelDIPRMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := randomKeys(rng, 9000, 16) // above the parallel threshold
	serial := New(keys, 1)
	parallel := New(keys, 4)
	q := make([]float32, 16)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	a, bestA := serial.DIPR(q, 1.5)
	b, bestB := parallel.DIPR(q, 1.5)
	if bestA != bestB {
		t.Fatalf("best differs: %v vs %v", bestA, bestB)
	}
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("rank %d differs: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
}

func TestIndexSeesAppendedRows(t *testing.T) {
	keys := vec.NewMatrix(0, 4)
	keys.Append([]float32{1, 0, 0, 0})
	x := New(keys, 1)
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
	keys.Append([]float32{0, 1, 0, 0})
	if x.Len() != 2 {
		t.Errorf("Len after append = %d, want 2", x.Len())
	}
	got := x.TopK([]float32{0, 1, 0, 0}, 1)
	if got[0].ID != 1 {
		t.Errorf("TopK missed appended row: %v", got)
	}
}

// TestDIPRScratchMatchesAllocating pins that the scratch scan returns the
// exact candidates of the allocating form, including across reuse of a
// dirty arena.
func TestDIPRScratchMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := randomKeys(rng, 2000, 16)
	x := Make(keys, 1)
	var sc Scratch
	for trial := 0; trial < 5; trial++ {
		q := make([]float32, 16)
		for j := range q {
			q[j] = rng.Float32()*2 - 1
		}
		limit := 500 + trial*300
		want, wantBest := x.DIPRFiltered(q, 1.2, limit)
		got, gotBest := x.DIPRFilteredScratch(&sc, q, 1.2, limit)
		if gotBest != wantBest {
			t.Fatalf("trial %d: best %v vs %v", trial, gotBest, wantBest)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d candidates", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDIPRScratchZeroAllocWarm guards the allocation-free warm scan.
func TestDIPRScratchZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	keys := randomKeys(rng, 2048, 16)
	x := Make(keys, 1)
	q := make([]float32, 16)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	var sc Scratch
	x.DIPRFilteredScratch(&sc, q, 2, 2048) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		x.DIPRFilteredScratch(&sc, q, 2, 2048)
	})
	if allocs != 0 {
		t.Fatalf("warm scratch DIPR allocated %.1f times per run, want 0", allocs)
	}
}

// snapKeys quantizes keys in place (snapping fp32 rows to the dequantized
// plane, as kvcache.EnableQuantKeys does) and returns the shadow.
func snapKeys(keys *vec.Matrix) *vec.QuantMatrix {
	qm := vec.QuantizeMatrix(keys)
	for i := 0; i < keys.Rows(); i++ {
		qm.DequantizeRow(i, keys.Row(i))
	}
	return qm
}

// TestQuantDIPRMatchesFP32 is the flat-index half of the recall-parity
// guarantee: over a snapped key plane, the quantized scan with widened β
// plus fp32 rerank returns candidates identical to the fp32 scan — ids,
// scores, order, and best.
func TestQuantDIPRMatchesFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, workers := range []int{1, 4} {
		for _, n := range []int{1, 50, 700, 5000} {
			keys := randomKeys(rng, n, 16)
			qm := snapKeys(keys)
			fp := Make(keys, workers)
			qx := MakeQuant(keys, qm, workers)
			var fsc, qsc Scratch
			for trial := 0; trial < 4; trial++ {
				q := make([]float32, 16)
				for j := range q {
					q[j] = rng.Float32()*2 - 1
				}
				beta := float32(trial) * 0.4
				want, wantBest := fp.DIPRFilteredScratch(&fsc, q, beta, n)
				got, gotBest := qx.DIPRFilteredScratch(&qsc, q, beta, n)
				if gotBest != wantBest {
					t.Fatalf("workers=%d n=%d trial %d: best %v vs %v", workers, n, trial, gotBest, wantBest)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d n=%d trial %d: %d vs %d candidates", workers, n, trial, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d n=%d trial %d rank %d: %v vs %v", workers, n, trial, i, got[i], want[i])
					}
				}
				if qsc.Reranked < len(want) {
					t.Fatalf("reranked %d < band size %d: widened band cannot be smaller than the exact band",
						qsc.Reranked, len(want))
				}
				if fsc.Reranked != 0 {
					t.Fatalf("fp32 scan reported %d reranked rows", fsc.Reranked)
				}
			}
		}
	}
}

// TestQuantDIPRScratchZeroAllocWarm extends the zero-alloc guard to the
// quantized scan + rerank path.
func TestQuantDIPRScratchZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	keys := randomKeys(rng, 2048, 16)
	qm := snapKeys(keys)
	x := MakeQuant(keys, qm, 1)
	q := make([]float32, 16)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	var sc Scratch
	x.DIPRFilteredScratch(&sc, q, 2, 2048) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		x.DIPRFilteredScratch(&sc, q, 2, 2048)
	})
	if allocs != 0 {
		t.Fatalf("warm quantized DIPR allocated %.1f times per run, want 0", allocs)
	}
}

// TestTopKScratchMatchesAndZeroAlloc is the satellite guard: the scratch
// top-k scan matches the allocating form and a warm serial scan allocates
// nothing.
func TestTopKScratchMatchesAndZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := randomKeys(rng, 3000, 16)
	x := Make(keys, 1)
	q := make([]float32, 16)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	var sc Scratch
	for _, k := range []int{1, 17, 64} {
		want := naiveTopK(q, keys, k)
		got := x.TopKScratch(&sc, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d vs %d candidates", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Score != want[i].Score {
				t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i], want[i])
			}
		}
	}
	x.TopKScratch(&sc, q, 64) // warm
	allocs := testing.AllocsPerRun(20, func() {
		x.TopKScratch(&sc, q, 64)
	})
	if allocs != 0 {
		t.Fatalf("warm TopKScratch allocated %.1f times per run, want 0", allocs)
	}
}

// TestQuantDIPRDegenerateBetaNoPanic pins the empty-widened-band guard: a
// degenerate β reachable only through the public API (NaN, or negative
// beyond the widening) returns an empty band like the fp32 path instead of
// panicking in the rerank.
func TestQuantDIPRDegenerateBetaNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	keys := randomKeys(rng, 100, 8)
	qm := snapKeys(keys)
	x := MakeQuant(keys, qm, 1)
	q := make([]float32, 8)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	var sc Scratch
	nan := float32(math.NaN())
	if got, _ := x.DIPRFilteredScratch(&sc, q, nan, 100); len(got) != 0 {
		t.Fatalf("NaN beta returned %d candidates", len(got))
	}
	if got, _ := x.DIPRFilteredScratch(&sc, q, -1e6, 100); len(got) != 0 {
		t.Fatalf("large negative beta returned %d candidates", len(got))
	}
}
