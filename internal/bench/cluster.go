package bench

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/attention"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/serve"
	agrpc "repro/internal/serve/grpc"
	"repro/internal/workload"
)

func init() {
	register("cluster", "cluster routing cost: decode step latency through the shard router over 1/2/4 in-process alayad nodes vs the local service, whole-context and range-sharded placement", runCluster)
}

// ClusterRow is one placement configuration's measured decode throughput.
type ClusterRow struct {
	// Name identifies the configuration: local (direct Service call, no
	// wire), routed/N (whole-context placement through a router over N
	// nodes), sharded/N (range shards fanned over N nodes and merged).
	Name string `json:"name"`
	// Nodes is the cluster size behind the router (0 for the local row).
	Nodes int `json:"nodes"`
	// TokensPerSec is end-to-end decode throughput: every step crosses
	// the router's gRPC hop(s), attention compute included.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// MicrosPerStep is the same measurement as per-step latency.
	MicrosPerStep float64 `json:"us_per_step"`
}

// ClusterReportData is the machine-readable artefact of the cluster
// experiment (written to BENCH_PR10.json by CI): what routing a decode
// step through the cluster costs against calling the local service, and
// what range-shard fan-out plus log-sum-exp merge adds on top. Nodes are
// real gRPC listeners on loopback, so the routed rows price serialization,
// the HTTP/2 hop, and the router's bookkeeping — not network distance.
type ClusterReportData struct {
	ContextLen   int          `json:"context_len"`
	Layers       int          `json:"layers"`
	QHeads       int          `json:"q_heads"`
	DecodeTokens int          `json:"decode_tokens"`
	ShardTokens  int          `json:"shard_tokens"`
	Rows         []ClusterRow `json:"rows"`
	// RoutedOverLocal is routed/1 throughput over local — the pure cost
	// of the router hop (expected well under 1.0; the hop adds a frame
	// round trip per step).
	RoutedOverLocal float64 `json:"routed_over_local"`
	// ShardedOverRouted is sharded/4 over routed/4 — what fan-out and
	// merge cost relative to a single proxied call at the same cluster
	// size.
	ShardedOverRouted float64 `json:"sharded_over_routed"`
}

// clusterNode is one in-process alayad: DB, service, gRPC listener.
type clusterNode struct {
	db  *core.DB
	srv *serve.Server
	hs  interface{ Close() error }
	ln  net.Listener
}

func (n *clusterNode) close() {
	n.hs.Close()
	n.srv.Close()
	n.db.Close()
}

func startClusterNode(s Scale) (*clusterNode, error) {
	db, err := core.New(core.Config{
		Model:         model.New(s.Model),
		Window:        attention.Window{Sinks: 4, Recent: 16},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 16, QueryKNN: 12, EfConstruction: 64, Workers: s.Workers},
		Workers:       s.Workers,
	})
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(db)
	gsrv := agrpc.NewServer(srv.Service())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		db.Close()
		return nil, err
	}
	hs := agrpc.NewHTTPServer(ln.Addr().String(), gsrv.Handler())
	go hs.Serve(ln)
	return &clusterNode{db: db, srv: srv, hs: hs, ln: ln}, nil
}

// clusterDecode times tokens decode steps against core (the router or a
// local service — both implement serve.Core, so the measured loop is
// identical).
func clusterDecode(c serve.Core, id int64, inst workload.Instance, queries [][][][]float32) (float64, error) {
	tok := inst.Doc.Tokens[inst.Doc.Len()-1]
	// One untimed step warms connections and arena pools.
	if _, err := c.Step(id, &serve.StepRequest{Token: tok, Queries: queries[0]}); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := range queries {
		if _, err := c.Step(id, &serve.StepRequest{Token: tok, Queries: queries[i]}); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds(), nil
}

// ClusterReport measures routed decode at scale s. Every configuration
// decodes the same token sequence with the same precomputed queries over
// the same document, so the rows differ only in how many hops and merges
// each step crosses.
func ClusterReport(s Scale) (*ClusterReportData, error) {
	s.Defaults()
	m := model.New(s.Model)
	mc := m.Config()
	p, _ := workload.ProfileByName("Retr.P")
	inst := workload.Generate(p, s.Seed, s.ContextLen, 64, s.Model.Vocab)

	tokens := 8 * s.Trials
	queries := make([][][][]float32, tokens)
	for i := range queries {
		queries[i] = make([][][]float32, mc.Layers)
		for l := range queries[i] {
			queries[i][l] = make([][]float32, mc.QHeads)
			for h := range queries[i][l] {
				queries[i][l][h] = m.QueryVector(inst.Doc, l, h, model.QuerySpec{
					FocusTopics: inst.Question, Step: i, ContextLen: inst.Doc.Len()})
			}
		}
	}

	shardTokens := (inst.Doc.Len() + 3) / 4
	data := &ClusterReportData{
		ContextLen:   inst.Doc.Len(),
		Layers:       mc.Layers,
		QHeads:       mc.QHeads,
		DecodeTokens: tokens,
		ShardTokens:  shardTokens,
	}
	addRow := func(name string, nodes int, elapsed float64) {
		data.Rows = append(data.Rows, ClusterRow{
			Name:          name,
			Nodes:         nodes,
			TokensPerSec:  float64(tokens) / elapsed,
			MicrosPerStep: elapsed / float64(tokens) * 1e6,
		})
	}

	// Local baseline: the service core called directly, no wire at all.
	local, err := startClusterNode(s)
	if err != nil {
		return nil, err
	}
	svc := local.srv.Service()
	resp, err := svc.CreateSession(&serve.CreateSessionRequest{Seed: inst.Doc.Seed, Tokens: inst.Doc.Tokens})
	if err != nil {
		local.close()
		return nil, err
	}
	if _, err := svc.Prefill(resp.SessionID); err != nil {
		local.close()
		return nil, err
	}
	elapsed, err := clusterDecode(svc, resp.SessionID, inst, queries)
	local.close()
	if err != nil {
		return nil, fmt.Errorf("bench: cluster local: %w", err)
	}
	addRow("local", 0, elapsed)

	// Routed and sharded rows: a router over n loopback nodes.
	measure := func(name string, n, shardToks int) error {
		nodes := make([]*clusterNode, n)
		addrs := make([]string, n)
		for i := range nodes {
			cn, err := startClusterNode(s)
			if err != nil {
				return err
			}
			nodes[i] = cn
			addrs[i] = cn.ln.Addr().String()
		}
		defer func() {
			for _, cn := range nodes {
				cn.close()
			}
		}()
		r, err := cluster.NewRouter(cluster.Options{Peers: addrs, ShardTokens: shardToks, ProbeInterval: -1})
		if err != nil {
			return err
		}
		defer r.Close()
		resp, err := r.CreateSession(&serve.CreateSessionRequest{Seed: inst.Doc.Seed, Tokens: inst.Doc.Tokens})
		if err != nil {
			return err
		}
		if _, err := r.Prefill(resp.SessionID); err != nil {
			return err
		}
		elapsed, err := clusterDecode(r, resp.SessionID, inst, queries)
		if err != nil {
			return fmt.Errorf("bench: cluster %s: %w", name, err)
		}
		addRow(name, n, elapsed)
		return nil
	}
	for _, n := range []int{1, 2, 4} {
		if err := measure(fmt.Sprintf("routed/%d", n), n, 0); err != nil {
			return nil, err
		}
	}
	if err := measure("sharded/4", 4, shardTokens); err != nil {
		return nil, err
	}

	byName := map[string]float64{}
	for _, r := range data.Rows {
		byName[r.Name] = r.TokensPerSec
	}
	if byName["local"] > 0 {
		data.RoutedOverLocal = byName["routed/1"] / byName["local"]
	}
	if byName["routed/4"] > 0 {
		data.ShardedOverRouted = byName["sharded/4"] / byName["routed/4"]
	}
	return data, nil
}

// WriteClusterTable renders the report as the experiment's textual
// artefact.
func WriteClusterTable(data *ClusterReportData, w io.Writer) {
	fmt.Fprintf(w, "cluster routing cost: context %d, %d layers x %d heads, %d decode tokens, loopback gRPC nodes, shard threshold %d tokens\n\n",
		data.ContextLen, data.Layers, data.QHeads, data.DecodeTokens, data.ShardTokens)
	t := &table{header: []string{"placement", "nodes", "tokens/sec", "us/step"}}
	for _, r := range data.Rows {
		nodes := "-"
		if r.Nodes > 0 {
			nodes = fmt.Sprintf("%d", r.Nodes)
		}
		t.add(r.Name, nodes, fmt.Sprintf("%.1f", r.TokensPerSec), f1(r.MicrosPerStep))
	}
	t.write(w)
	fmt.Fprintf(w, "\nrouted/1 vs local: %.2fx; sharded/4 vs routed/4: %.2fx\n",
		data.RoutedOverLocal, data.ShardedOverRouted)
	fmt.Fprintln(w, "expectation: routed rows are flat across cluster sizes (one hop per step regardless of nodes); the sharded row prices fan-out plus log-sum-exp merge against one proxied call")
}

// runCluster is the experiment runner.
func runCluster(s Scale, w io.Writer) error {
	data, err := ClusterReport(s)
	if err != nil {
		return err
	}
	WriteClusterTable(data, w)
	return nil
}
