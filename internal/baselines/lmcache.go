package baselines

import (
	"math"
	"time"

	"repro/internal/attention"
	"repro/internal/devmem"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/vec"
)

// LMCache models the KV-cache-disaggregation baseline of Figure 10
// (LMCache [15] / CacheGen [46]): the full context's KV cache is stored
// quantized on the host; serving a request loads it — dequantization (real
// CPU work) plus a host→device transfer (simulated through the devmem
// bandwidth model) — before the engine can decode with full attention.
// Its TTFT is therefore dominated by a load term linear in context length,
// the cost structure the paper's Figure 10(b) breakdown shows.
type LMCache struct {
	Model  *model.Model
	Device *devmem.Device

	stored   []quantizedHead // layer*kvHeads + head, keys then values
	layers   int
	kvHeads  int
	headDim  int
	tokens   int
	rawBytes int64
}

type quantizedHead struct {
	keys quantized
	vals quantized
}

// quantized is a per-vector symmetric int8 quantization of a matrix: the
// storage format KV-cache stores ship across hosts (CacheGen quantizes;
// we reproduce the quantize/dequantize work and the reduced volume).
type quantized struct {
	dim    int
	scales []float32
	data   []int8
}

func quantize(m *vec.Matrix) quantized {
	rows, dim := m.Rows(), m.Cols()
	q := quantized{dim: dim, scales: make([]float32, rows), data: make([]int8, rows*dim)}
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		maxAbs := float32(0)
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		q.scales[i] = scale
		for j, v := range row {
			q.data[i*dim+j] = int8(v / scale)
		}
	}
	return q
}

func (q quantized) dequantize() *vec.Matrix {
	rows := len(q.scales)
	out := vec.NewMatrix(rows, q.dim)
	for i := 0; i < rows; i++ {
		row := out.Row(i)
		s := q.scales[i]
		for j := 0; j < q.dim; j++ {
			row[j] = float32(q.data[i*q.dim+j]) * s
		}
	}
	return out
}

// bytes is the stored (and transferred) volume.
func (q quantized) bytes() int64 {
	return int64(len(q.data)) + int64(len(q.scales))*4
}

// Store quantizes and retains the KV cache of doc, as the disaggregated
// cache service would after the context's first prefill.
func (l *LMCache) Store(doc *model.Document) {
	m := l.Model
	mc := m.Config()
	cache := m.BuildKV(doc)
	l.layers, l.kvHeads, l.headDim = mc.Layers, mc.KVHeads, mc.HeadDim
	l.tokens = doc.Len()
	l.rawBytes = cache.Bytes()
	l.stored = make([]quantizedHead, mc.Layers*mc.KVHeads)
	for lay := 0; lay < mc.Layers; lay++ {
		for h := 0; h < mc.KVHeads; h++ {
			l.stored[lay*mc.KVHeads+h] = quantizedHead{
				keys: quantize(cache.Keys(lay, h)),
				vals: quantize(cache.Values(lay, h)),
			}
		}
	}
}

// StoredBytes returns the quantized cache volume (what must be
// transferred to the device on reuse).
func (l *LMCache) StoredBytes() int64 {
	var n int64
	for _, qh := range l.stored {
		n += qh.keys.bytes() + qh.vals.bytes()
	}
	return n
}

// TTFTBreakdown separates the load term from the decode term.
type TTFTBreakdown struct {
	Load   time.Duration // dequantize (measured) + transfer (simulated)
	Decode time.Duration // first-token full attention (measured)
	Total  time.Duration
}

// TTFT serves one request against the stored context and returns the time
// to first token with its breakdown. The query is a decode step focused on
// the given topic.
func (l *LMCache) TTFT(doc *model.Document, focusTopic int) TTFTBreakdown {
	if l.stored == nil {
		panic("baselines: LMCache.TTFT before Store")
	}
	m := l.Model
	mc := m.Config()

	// Load: dequantize everything (real work), then ship raw KV to device
	// (simulated transfer of the dequantized volume).
	start := time.Now()
	cache := kvcache.New(l.layers, l.kvHeads, l.headDim)
	for lay := 0; lay < l.layers; lay++ {
		for h := 0; h < l.kvHeads; h++ {
			qh := l.stored[lay*l.kvHeads+h]
			keys := qh.keys.dequantize()
			vals := qh.vals.dequantize()
			for i := 0; i < keys.Rows(); i++ {
				cache.Append(lay, h, keys.Row(i), vals.Row(i))
			}
		}
	}
	load := time.Since(start)
	if l.Device != nil {
		load += l.Device.TransferTime(l.StoredBytes())
	}

	// Decode: one full-attention step across all layers and query heads.
	start = time.Now()
	n := cache.SeqLen(0)
	for lay := 0; lay < mc.Layers; lay++ {
		for qh := 0; qh < mc.QHeads; qh++ {
			q := m.QueryVector(doc, lay, qh, model.QuerySpec{FocusTopics: []int{focusTopic}, ContextLen: n})
			kv := m.KVGroup(qh)
			_ = attention.FullOnline(q, cache.Keys(lay, kv), cache.Values(lay, kv))
		}
	}
	decode := time.Since(start)

	return TTFTBreakdown{Load: load, Decode: decode, Total: load + decode}
}
