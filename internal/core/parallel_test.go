package core

import (
	"sync"
	"testing"

	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/workload"
)

// parallelSession builds a session whose attention exercises the long-path
// machinery (reused prefix + DIPR retrieval + tail) so the parallel fan-out
// covers every partial, then prefills it.
func parallelSession(t *testing.T, p *pool.Pool) (*DB, *Session) {
	t.Helper()
	db, err := New(Config{
		Model:         testModel(),
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       2,
		Pool:          p,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	prof, _ := workload.ProfileByName("Retr.P")
	inst := workload.Generate(prof, 11, 700, 64, 32)
	if _, err := db.ImportDoc(inst.Doc); err != nil {
		t.Fatal(err)
	}
	longer := &model.Document{Seed: inst.Doc.Seed, Tokens: append(append([]model.Token(nil), inst.Doc.Tokens...), model.NewFiller(11, 40, 8, 32).Tokens...)}
	sess, reused := db.CreateSession(longer)
	if reused == 0 {
		t.Fatal("expected prefix reuse")
	}
	t.Cleanup(func() { sess.Close() })
	sess.PrefillRemaining()
	return db, sess
}

// TestAttentionAllParallelMatchesSerial asserts the pooled fan-out of
// AttentionAll is bitwise-identical to calling Attention head by head:
// parallelism must change wall-clock time only, never outputs.
func TestAttentionAllParallelMatchesSerial(t *testing.T) {
	db, sess := parallelSession(t, pool.New(8))
	m := db.Model()
	mc := m.Config()
	for layer := 0; layer < mc.Layers; layer++ {
		qs := make([][]float32, mc.QHeads)
		for h := range qs {
			qs[h] = m.QueryVector(sess.Doc(), layer, h, model.QuerySpec{FocusTopics: []int{3}, ContextLen: sess.Doc().Len()})
		}
		serial := make([]AttentionResult, len(qs))
		for h, q := range qs {
			serial[h] = sess.Attention(layer, h, q)
		}
		parallel := sess.AttentionAll(layer, qs)
		for h := range qs {
			if serial[h].Plan != parallel[h].Plan {
				t.Fatalf("layer %d head %d: plan %v (serial) vs %v (parallel)", layer, h, serial[h].Plan, parallel[h].Plan)
			}
			if len(serial[h].Output) != len(parallel[h].Output) {
				t.Fatalf("layer %d head %d: output dims differ", layer, h)
			}
			for i := range serial[h].Output {
				if serial[h].Output[i] != parallel[h].Output[i] {
					t.Fatalf("layer %d head %d dim %d: %v (serial) != %v (parallel)", layer, h, i, serial[h].Output[i], parallel[h].Output[i])
				}
			}
			if serial[h].Retrieved != parallel[h].Retrieved || serial[h].Attended != parallel[h].Attended {
				t.Fatalf("layer %d head %d: execution facts diverge", layer, h)
			}
		}
	}
}

// TestPrefillParallelMatchesSerial asserts the per-layer parallel prefill
// sweep ingests exactly the KV a size-1 (serial) pool would.
func TestPrefillParallelMatchesSerial(t *testing.T) {
	_, serialSess := parallelSession(t, pool.New(1))
	db, parSess := parallelSession(t, pool.New(8))
	mc := db.Model().Config()
	for l := 0; l < mc.Layers; l++ {
		if serialSess.ContextLen(l) != parSess.ContextLen(l) {
			t.Fatalf("layer %d: context len %d (serial) vs %d (parallel)", l, serialSess.ContextLen(l), parSess.ContextLen(l))
		}
		for h := 0; h < mc.KVHeads; h++ {
			sk, pk := serialSess.tail.Keys(l, h), parSess.tail.Keys(l, h)
			if sk.Rows() != pk.Rows() {
				t.Fatalf("layer %d head %d: tail rows differ", l, h)
			}
			for r := 0; r < sk.Rows(); r++ {
				srow, prow := sk.Row(r), pk.Row(r)
				for i := range srow {
					if srow[i] != prow[i] {
						t.Fatalf("layer %d head %d row %d: tail KV diverges", l, h, r)
					}
				}
			}
		}
	}
}

// TestAttentionAllConcurrentCallers hammers one session with parallel
// AttentionAll and Stats calls; run under -race this is the session-level
// thread-safety regression for the fan-out refactor.
func TestAttentionAllConcurrentCallers(t *testing.T) {
	db, sess := parallelSession(t, pool.New(4))
	m := db.Model()
	mc := m.Config()
	qs := make([][]float32, mc.QHeads)
	for h := range qs {
		qs[h] = m.QueryVector(sess.Doc(), 1, h, model.QuerySpec{FocusTopics: []int{5}, ContextLen: sess.Doc().Len()})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				sess.AttentionAll(1, qs)
				sess.Stats()
			}
		}()
	}
	wg.Wait()
	if got := sess.Stats().Queries; got != int64(4*3*mc.QHeads) {
		t.Fatalf("stats recorded %d queries, want %d", got, 4*3*mc.QHeads)
	}
}
