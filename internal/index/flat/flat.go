// Package flat implements the flat index of §6.2: an exhaustive scan over
// all keys. It consumes no device memory, benefits from sequential access,
// and — unlike the coarse index — is exact. The optimizer routes layer-1
// DIPR queries here because the first layer's diffuse heads need so many
// tokens that graph traversal would be slower than a scan (Table 4).
package flat

import (
	"sync"

	"repro/internal/index"
	"repro/internal/vec"
)

// Index scans a key matrix. It holds a reference to the matrix (no copy);
// the matrix must not shrink while the index is in use. Appending rows is
// allowed — the scan reads the current length.
type Index struct {
	keys *vec.Matrix
	// Workers bounds scan parallelism; 0 means single-threaded.
	workers int
}

// New returns a flat index over keys with the given parallelism (workers
// <= 1 means serial).
func New(keys *vec.Matrix, workers int) *Index {
	if workers < 1 {
		workers = 1
	}
	return &Index{keys: keys, workers: workers}
}

// Len returns the number of indexed vectors.
func (x *Index) Len() int { return x.keys.Rows() }

// TopK returns the k highest-inner-product candidates, best first.
func (x *Index) TopK(q []float32, k int) []index.Candidate {
	n := x.keys.Rows()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if x.workers == 1 || n < 4096 {
		h := make(index.MinHeap, 0, k)
		x.scanRange(q, 0, n, func(id int32, score float32) {
			h.PushBounded(index.Candidate{ID: id, Score: score}, k)
		})
		return h.Sorted()
	}
	// Parallel: each worker selects a local top-k; merge.
	locals := make([]index.MinHeap, x.workers)
	var wg sync.WaitGroup
	chunk := (n + x.workers - 1) / x.workers
	for w := 0; w < x.workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := make(index.MinHeap, 0, k)
			x.scanRange(q, lo, hi, func(id int32, score float32) {
				h.PushBounded(index.Candidate{ID: id, Score: score}, k)
			})
			locals[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	merged := make(index.MinHeap, 0, k)
	for _, h := range locals {
		for _, c := range h {
			merged.PushBounded(c, k)
		}
	}
	return merged.Sorted()
}

// DIPR returns all candidates whose inner product is within beta of the
// maximum inner product over the whole index — the exact result of the
// Dynamic Inner-Product Range query (Definition 3). The result is sorted
// best first. It also returns the maximum inner product found.
func (x *Index) DIPR(q []float32, beta float32) ([]index.Candidate, float32) {
	return x.DIPRFiltered(q, beta, x.keys.Rows())
}

// DIPRFiltered is DIPR restricted to positions < limit (the attribute
// filtering predicate of §7.1: token id below the reused prefix length).
func (x *Index) DIPRFiltered(q []float32, beta float32, limit int) ([]index.Candidate, float32) {
	n := x.keys.Rows()
	if limit < n {
		n = limit
	}
	if n <= 0 {
		return nil, 0
	}
	scores := make([]float32, n)
	best := float32(0)
	scan := func(lo, hi int) float32 {
		localBest := vec.Dot(q, x.keys.Row(lo))
		scores[lo] = localBest
		for i := lo + 1; i < hi; i++ {
			s := vec.Dot(q, x.keys.Row(i))
			scores[i] = s
			if s > localBest {
				localBest = s
			}
		}
		return localBest
	}
	if x.workers == 1 || n < 4096 {
		best = scan(0, n)
	} else {
		bests := make([]float32, x.workers)
		var wg sync.WaitGroup
		chunk := (n + x.workers - 1) / x.workers
		for w := 0; w < x.workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				bests[w] = scores[0] // placeholder, overwritten below if empty
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bests[w] = scan(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		best = bests[0]
		for _, b := range bests[1:] {
			if b > best {
				best = b
			}
		}
	}
	threshold := best - beta
	var out index.MinHeap
	for i := 0; i < n; i++ {
		if scores[i] >= threshold {
			out = append(out, index.Candidate{ID: int32(i), Score: scores[i]})
		}
	}
	// Heapify then drain for a best-first ordering.
	h := out
	res := make(index.MinHeap, 0, len(h))
	for _, c := range h {
		res.PushBounded(c, len(h))
	}
	return res.Sorted(), best
}

func (x *Index) scanRange(q []float32, lo, hi int, emit func(int32, float32)) {
	for i := lo; i < hi; i++ {
		emit(int32(i), vec.Dot(q, x.keys.Row(i)))
	}
}
