package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Registry is the server's sharded session table. Session IDs are drawn
// from one atomic counter (no lock), and each ID is hashed to a shard
// holding its own mutex and map slice, so registrations and lookups for
// different sessions almost never contend. Each entry additionally carries
// a per-session RWMutex that serializes *state-mutating* requests
// (prefill/update/store/close) against each other while letting attention
// reads on the same session — and everything on other sessions — proceed
// in parallel. See the package comment for the full locking discipline.
type Registry struct {
	nextID atomic.Int64
	shards []registryShard
}

type registryShard struct {
	mu       sync.RWMutex
	sessions map[int64]*sessionEntry
}

// sessionEntry pairs a session with its request lock. The lock is held in
// read mode for Session methods that are internally thread-safe and do not
// grow the context (Attention, AttentionAll, Stats, ContextLen) and in
// write mode for methods that mutate session state (PrefillRemaining,
// AppendToken, Store's materialization, Close). closed is set under mu
// when Remove/Drain detach the entry: an Acquire that looked the entry up
// before removal but locked it after must not serve the closed session.
type sessionEntry struct {
	mu     sync.RWMutex
	sess   *core.Session
	closed bool
}

// NewRegistry returns a registry with the given shard count, rounded up to
// a power of two (minimum 1) so shard selection is a mask, not a modulo.
func NewRegistry(shards int) *Registry {
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry{shards: make([]registryShard, n)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[int64]*sessionEntry)
	}
	return r
}

// Shards returns the registry's shard count.
func (r *Registry) Shards() int { return len(r.shards) }

func (r *Registry) shardFor(id int64) *registryShard {
	// IDs are sequential, so the low bits alone spread perfectly.
	return &r.shards[int(id)&(len(r.shards)-1)]
}

// Add registers a session and returns its freshly allocated ID. ID
// allocation never takes a lock: the counter is atomic and IDs are unique
// for the registry's lifetime.
func (r *Registry) Add(sess *core.Session) int64 {
	id := r.nextID.Add(1)
	sh := r.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = &sessionEntry{sess: sess}
	sh.mu.Unlock()
	return id
}

// Acquire looks up a session and locks its entry — exclusively for
// state-mutating requests, shared otherwise. It returns the session, a
// release function that must be called exactly once when the request
// finishes, and whether the session exists. The shard lock is dropped
// before the entry lock is taken, so a slow request on one session never
// stalls lookups of its shard siblings.
func (r *Registry) Acquire(id int64, exclusive bool) (*core.Session, func(), bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, nil, false
	}
	if exclusive {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, nil, false
		}
		return e.sess, e.mu.Unlock, true
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, nil, false
	}
	return e.sess, e.mu.RUnlock, true
}

// Remove unregisters a session and returns it for closing. It waits for
// every in-flight request on the session to release its entry lock before
// returning, so the caller may Close the session immediately: removal from
// the shard map happens first, which cuts off new acquisitions.
func (r *Registry) Remove(id int64) (*core.Session, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	e.mu.Lock() // drain in-flight requests
	e.closed = true
	e.mu.Unlock()
	return e.sess, true
}

// Len returns the number of registered sessions.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// Drain removes and returns every registered session, waiting out in-flight
// requests per session as Remove does. Used by Server.Close.
func (r *Registry) Drain() []*core.Session {
	var out []*core.Session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		entries := make([]*sessionEntry, 0, len(sh.sessions))
		for id, e := range sh.sessions {
			entries = append(entries, e)
			delete(sh.sessions, id)
		}
		sh.mu.Unlock()
		for _, e := range entries {
			e.mu.Lock()
			e.closed = true
			e.mu.Unlock()
			out = append(out, e.sess)
		}
	}
	return out
}
