package core

import (
	"fmt"

	"repro/internal/model"
)

// This file is the batched decode-step entry point behind the v2 serving
// API: one call ingests a generated token and computes attention for every
// (layer, head) of the model, so a serving layer can answer a whole decode
// step in a single round trip instead of one update plus one attention_all
// per layer.

// AttentionAllLayersInto computes attention for every query head of every
// layer in one fan-out: qs and out are indexed [layer][head], every layer
// must carry the same head count, and len(out[l]) must equal len(qs[l]).
// The full layers×heads task set fans across the DB's worker pool with one
// pooled decode state per worker — deeper layers' heads start as soon as a
// worker frees up, rather than barriering layer by layer the way repeated
// AttentionAllInto calls do. Buffer reuse and determinism follow
// AttentionAllInto: bitwise-identical to the serial per-layer sweep on an
// unconstrained device, with the same device-sampling caveat under a tight
// budget.
func (s *Session) AttentionAllLayersInto(qs [][][]float32, out [][]AttentionResult) {
	if len(out) != len(qs) {
		panic(fmt.Sprintf("core: AttentionAllLayersInto got %d result rows for %d layers", len(out), len(qs)))
	}
	if len(qs) == 0 {
		return
	}
	heads := len(qs[0])
	n := 0
	for l := range qs {
		if len(qs[l]) != heads {
			panic(fmt.Sprintf("core: AttentionAllLayersInto layer %d has %d heads, layer 0 has %d", l, len(qs[l]), heads))
		}
		if len(out[l]) != len(qs[l]) {
			panic(fmt.Sprintf("core: AttentionAllLayersInto layer %d got %d result slots for %d heads", l, len(out[l]), len(qs[l])))
		}
		n += len(qs[l])
	}
	if n == 0 {
		return
	}
	p := s.db.cfg.Pool
	if p.Size() == 0 || n == 1 {
		ds := getDecodeState()
		for l := range qs {
			for h := range qs[l] {
				s.attentionInto(ds, l, h, qs[l][h], &out[l][h])
			}
		}
		putDecodeState(ds)
		return
	}
	p.ForEachScratch(n, getDecodeStateAny, putDecodeStateAny,
		func(sc interface{}, i int) {
			l, h := i/heads, i%heads
			s.attentionInto(sc.(*decodeState), l, h, qs[l][h], &out[l][h])
		})
}

// StepInto is one whole decode step: ingest the generated token across all
// layers (AppendToken), then compute attention for every layer and head
// over the extended context, writing into out as AttentionAllLayersInto
// does. It is exactly equivalent to AppendToken followed by one
// AttentionAllInto per layer — the v1 protocol's 1+Layers round trips —
// collapsed into a single call.
func (s *Session) StepInto(tok model.Token, qs [][][]float32, out [][]AttentionResult) {
	s.AppendToken(tok)
	s.AttentionAllLayersInto(qs, out)
}

// StepAttendOnlyInto is a decode step that computes the step's attention
// without ingesting the token — the shape a fixed-span shard answers when
// a cluster router fans one logical step across nodes: only the open
// tail-owner shard ingests the generated token; every other shard scores
// the same queries over its frozen span and ships the partial.
func (s *Session) StepAttendOnlyInto(qs [][][]float32, out [][]AttentionResult) {
	s.AttentionAllLayersInto(qs, out)
}

// Step is StepInto with freshly allocated results, indexed [layer][head].
// Serving loops that reuse buffers call StepInto.
func (s *Session) Step(tok model.Token, qs [][][]float32) [][]AttentionResult {
	out := make([][]AttentionResult, len(qs))
	for l := range qs {
		out[l] = make([]AttentionResult, len(qs[l]))
	}
	s.StepInto(tok, qs, out)
	return out
}
