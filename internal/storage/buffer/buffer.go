// Package buffer implements AlayaDB's purpose-built buffer manager (§7.3).
// It caches fixed blocks fetched from the vector file system with an
// eviction policy aware of the two block types: index blocks (graph
// adjacency, touched on every traversal) are preferred residents; data
// blocks (vector payloads, typically read once per retrieval) are evicted
// first. Within a type, eviction is LRU. Pinned frames are never evicted.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Kind mirrors vfs block types without importing the package (the manager
// is storage-agnostic: anything that can fetch bytes by key can sit below
// it).
type Kind uint8

const (
	// Data blocks are evicted first.
	Data Kind = iota
	// Index blocks are preferred residents.
	Index
)

// Key identifies a block: the file it belongs to and its block id.
type Key struct {
	File  string
	Block int64
}

// Fetcher loads a block's payload on a cache miss.
type Fetcher func(k Key) ([]byte, error)

// ErrNoCapacity is returned when a block cannot be admitted because every
// resident frame is pinned.
var ErrNoCapacity = errors.New("buffer: all frames pinned")

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	BytesUsed int64
}

type frame struct {
	key        Key
	kind       Kind
	payload    []byte
	pins       int
	elem       *list.Element // position in its kind's LRU list
	globalElem *list.Element // position in the global LRU list
}

// Policy selects the eviction strategy.
type Policy int

const (
	// TypeAware evicts data blocks before index blocks (§7.3 — the
	// purpose-built policy; index blocks are hit by every traversal).
	TypeAware Policy = iota
	// PlainLRU ignores block types: one LRU order across everything.
	// Exists for the ablation comparing it against TypeAware.
	PlainLRU
)

// Manager is a byte-capacity-bounded block cache. Safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	fetch    Fetcher
	policy   Policy
	frames   map[Key]*frame
	lru      [2]*list.List // one LRU list per Kind; front = most recent
	global   *list.List    // recency across kinds, for PlainLRU
	stats    Stats
}

// New returns a manager with the given byte capacity and the type-aware
// eviction policy. Fetch is invoked on misses (fetches are assumed fast
// block reads).
func New(capacity int64, fetch Fetcher) *Manager {
	return NewWithPolicy(capacity, fetch, TypeAware)
}

// NewWithPolicy returns a manager with an explicit eviction policy.
func NewWithPolicy(capacity int64, fetch Fetcher, policy Policy) *Manager {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: capacity must be positive, got %d", capacity))
	}
	if fetch == nil {
		panic("buffer: nil fetcher")
	}
	m := &Manager{capacity: capacity, fetch: fetch, policy: policy, frames: make(map[Key]*frame)}
	m.lru[Data] = list.New()
	m.lru[Index] = list.New()
	m.global = list.New()
	return m
}

// Get returns the payload of the block at key, fetching and caching it if
// absent, and pins the frame. Callers must Release the key when done. The
// returned slice must be treated as read-only and is valid until Release.
func (m *Manager) Get(key Key, kind Kind) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.frames[key]; ok {
		m.stats.Hits++
		f.pins++
		m.lru[f.kind].MoveToFront(f.elem)
		m.global.MoveToFront(f.globalElem)
		return f.payload, nil
	}
	m.stats.Misses++
	payload, err := m.fetch(key)
	if err != nil {
		return nil, fmt.Errorf("buffer: fetch %v: %w", key, err)
	}
	size := int64(len(payload))
	if size > m.capacity {
		return nil, fmt.Errorf("buffer: block %v (%d bytes) exceeds capacity %d", key, size, m.capacity)
	}
	if err := m.evictUntil(m.capacity - size); err != nil {
		return nil, err
	}
	f := &frame{key: key, kind: kind, payload: payload, pins: 1}
	f.elem = m.lru[kind].PushFront(f)
	f.globalElem = m.global.PushFront(f)
	m.frames[key] = f
	m.used += size
	m.stats.BytesUsed = m.used
	return payload, nil
}

// evictUntil evicts unpinned frames until used <= target. Under TypeAware,
// data blocks (LRU first) go before index blocks; under PlainLRU, the
// globally least-recently-used frame goes regardless of kind.
func (m *Manager) evictUntil(target int64) error {
	for m.used > target {
		var ok bool
		if m.policy == PlainLRU {
			ok = m.evictGlobalLRU()
		} else {
			ok = m.evictOne(Data) || m.evictOne(Index)
		}
		if !ok {
			return ErrNoCapacity
		}
	}
	return nil
}

// evictGlobalLRU removes the least-recently-used unpinned frame across
// both kinds, using the global recency list.
func (m *Manager) evictGlobalLRU() bool {
	for e := m.global.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		m.remove(f)
		return true
	}
	return false
}

// remove unlinks a frame from every structure and accounts the eviction.
func (m *Manager) remove(f *frame) {
	m.lru[f.kind].Remove(f.elem)
	m.global.Remove(f.globalElem)
	delete(m.frames, f.key)
	m.used -= int64(len(f.payload))
	m.stats.Evictions++
	m.stats.BytesUsed = m.used
}

// evictOne removes the least-recently-used unpinned frame of the given
// kind. Returns false if none is evictable.
func (m *Manager) evictOne(kind Kind) bool {
	for e := m.lru[kind].Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		m.remove(f)
		return true
	}
	return false
}

// Release unpins a frame previously returned by Get. Releasing an unknown
// or unpinned key is an error (double-release detection).
func (m *Manager) Release(key Key) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.frames[key]
	if !ok {
		return fmt.Errorf("buffer: release of uncached %v", key)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: release of unpinned %v", key)
	}
	f.pins--
	return nil
}

// InvalidateFile drops every unpinned resident frame belonging to file and
// returns how many frames were dropped. Callers use it when a backing file
// is deleted or rewritten (a spilled context consumed by reload) so stale
// payloads cannot be served if the path is later reused. Pinned frames are
// left in place: their readers still hold the payload.
func (m *Manager) InvalidateFile(file string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	dropped := 0
	for key, f := range m.frames {
		if key.File != file || f.pins > 0 {
			continue
		}
		m.remove(f)
		dropped++
	}
	return dropped
}

// Contains reports whether key is currently resident (pinned or not).
func (m *Manager) Contains(key Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.frames[key]
	return ok
}

// Stats returns a snapshot of cache counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Used returns the bytes currently cached.
func (m *Manager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Capacity returns the configured capacity.
func (m *Manager) Capacity() int64 { return m.capacity }
