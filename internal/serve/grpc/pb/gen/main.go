// Command gen generates the protobuf types of the alaya.v1.AlayaDB
// service. The schema lives here, as a descriptor table, and the
// program emits two artifacts from it:
//
//	alaya.pb.go — the Go message types with AppendProto/UnmarshalProto
//	              over the hand-written runtime in package pb
//	alaya.proto — the proto3 IDL, the interop contract for standard
//	              protoc-based clients in other languages
//
// Both are committed; `make proto` re-runs this program and a CI job
// fails if the committed files drift from the table. This is what lets
// the build stay free of protoc and google.golang.org/protobuf while
// still speaking wire-compatible gRPC.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"log"
	"os"
	"path/filepath"
	"strings"
)

type field struct {
	goName    string // Go struct field
	protoName string // proto3 snake_case name
	num       int
	kind      string // sint64 | int64 | uint64 | float | bool | bytes | string | message
	repeated  bool   // only supported for kind == "message"
	msg       string // message type name when kind == "message"
	doc       string
}

type message struct {
	name   string
	doc    string
	fields []field
}

type method struct {
	name    string
	in, out string
	stream  bool // server-streaming response
	doc     string
}

// The schema. Field numbers are the wire contract: never renumber or
// reuse them, only append.
var messages = []message{
	{
		name: "Token",
		doc:  "Token mirrors model.Token: one document token.",
		fields: []field{
			{"Topic", "topic", 1, "sint64", false, "", "synthetic vocabulary topic id"},
			{"Payload", "payload", 2, "sint64", false, "", "payload symbol within the topic"},
			{"Salience", "salience", 3, "float", false, "", "0 means default (1.0)"},
		},
	},
	{
		name: "CreateSessionRequest",
		doc:  "CreateSessionRequest opens a session over a document (serve.DocumentWire).",
		fields: []field{
			{"Seed", "seed", 1, "uint64", false, "", "document identity for prefix reuse"},
			{"Tokens", "tokens", 2, "message", true, "Token", "prompt tokens"},
			{"SpanLo", "span_lo", 3, "int64", false, "", "range-shard span start (cluster shards)"},
			{"SpanHi", "span_hi", 4, "int64", false, "", "exclusive span end; 0 = open tail"},
		},
	},
	{
		name: "CreateSessionResponse",
		doc:  "CreateSessionResponse reports the session id and reused prompt tokens.",
		fields: []field{
			{"SessionID", "session_id", 1, "int64", false, "", ""},
			{"Reused", "reused", 2, "int64", false, "", "prompt tokens reused from a shared prefix"},
		},
	},
	{
		name: "SessionRequest",
		doc:  "SessionRequest addresses an RPC whose only input is the session.",
		fields: []field{
			{"SessionID", "session_id", 1, "int64", false, "", ""},
		},
	},
	{
		name: "PrefillResponse",
		doc:  "PrefillResponse reports a prefill's effect.",
		fields: []field{
			{"Prefilled", "prefilled", 1, "int64", false, "", "tokens ingested by this call"},
			{"ContextLen", "context_len", 2, "int64", false, "", ""},
		},
	},
	{
		name: "UpdateRequest",
		doc:  "UpdateRequest ingests one decoded token.",
		fields: []field{
			{"SessionID", "session_id", 1, "int64", false, "", ""},
			{"Token", "token", 2, "message", false, "Token", ""},
		},
	},
	{
		name: "UpdateResponse",
		doc:  "UpdateResponse reports the context length after the update.",
		fields: []field{
			{"ContextLen", "context_len", 1, "int64", false, "", ""},
		},
	},
	{
		name: "FrameRequest",
		doc: "FrameRequest carries a tensor request as one application/x-alaya-frame\n" +
			"binary frame (serve.MarshalFrame), the same encoding the HTTP binary\n" +
			"wire uses — which is what makes gRPC results bit-exact with HTTP.",
		fields: []field{
			{"SessionID", "session_id", 1, "int64", false, "", ""},
			{"Frame", "frame", 2, "bytes", false, "", "one binary frame: the request payload"},
		},
	},
	{
		name: "FrameResponse",
		doc: "FrameResponse carries a tensor response as one binary frame. For\n" +
			"StepStream each message holds one stream-item frame and the final\n" +
			"message holds the stream-end frame.",
		fields: []field{
			{"Frame", "frame", 1, "bytes", false, "", ""},
		},
	},
	{
		name: "StoreResponse",
		doc:  "StoreResponse reports a successful context store.",
		fields: []field{
			{"StoredTokens", "stored_tokens", 1, "int64", false, "", ""},
		},
	},
	{
		name: "CloseSessionResponse",
		doc:  "CloseSessionResponse acknowledges a session close.",
		fields: []field{
			{"Status", "status", 1, "string", false, "", ""},
		},
	},
	{
		name: "HealthzRequest",
		doc:  "HealthzRequest is the empty probe input.",
	},
	{
		name: "HealthzResponse",
		doc:  "HealthzResponse is the load-balancer probe body.",
		fields: []field{
			{"Status", "status", 1, "string", false, "", ""},
			{"OpenSessions", "open_sessions", 2, "int64", false, "", ""},
		},
	},
	{
		name: "StatsRequest",
		doc:  "StatsRequest is the empty stats input.",
	},
	{
		name: "StatsResponse",
		doc: "StatsResponse carries serve.StatsResponse as its JSON encoding: the\n" +
			"stats document grows every release, and JSON keeps old clients\n" +
			"tolerant of new fields without wire-contract churn.",
		fields: []field{
			{"StatsJSON", "stats_json", 1, "bytes", false, "", "JSON-encoded serve.StatsResponse"},
		},
	},
}

var methods = []method{
	{"CreateSession", "CreateSessionRequest", "CreateSessionResponse", false, "CreateSession opens (or prefix-reuses) a session over a document."},
	{"Prefill", "SessionRequest", "PrefillResponse", false, "Prefill ingests the session's prompt into the KV substrate."},
	{"Update", "UpdateRequest", "UpdateResponse", false, "Update appends one decoded token to the context."},
	{"Attention", "FrameRequest", "FrameResponse", false, "Attention runs one head's query (frame: AttentionRequest)."},
	{"AttentionAll", "FrameRequest", "FrameResponse", false, "AttentionAll runs one layer's heads (frame: AttentionAllRequest)."},
	{"Step", "FrameRequest", "FrameResponse", false, "Step is the v2 decode step: token in, every layer and head out (frame: StepRequest)."},
	{"Steps", "FrameRequest", "FrameResponse", false, "Steps batches decode steps in one round trip (frame: StepsRequest)."},
	{"StepStream", "FrameRequest", "FrameResponse", true, "StepStream streams per-step frames as the scheduler retires each wave."},
	{"Store", "SessionRequest", "StoreResponse", false, "Store persists the session's context for later reuse."},
	{"CloseSession", "SessionRequest", "CloseSessionResponse", false, "CloseSession releases the session."},
	{"Healthz", "HealthzRequest", "HealthzResponse", false, "Healthz is the liveness probe."},
	{"Stats", "StatsRequest", "StatsResponse", false, "Stats reports DB-wide counters."},
}

const servicePackage = "alaya.v1"
const serviceName = "AlayaDB"

func goType(f field) string {
	switch f.kind {
	case "sint64", "int64":
		return "int64"
	case "uint64":
		return "uint64"
	case "float":
		return "float32"
	case "bool":
		return "bool"
	case "bytes":
		return "[]byte"
	case "string":
		return "string"
	case "message":
		if f.repeated {
			return "[]" + f.msg
		}
		return f.msg
	}
	panic("unknown kind " + f.kind)
}

func protoType(f field) string {
	t := f.kind
	if f.kind == "message" {
		t = f.msg
	}
	if f.repeated {
		t = "repeated " + t
	}
	return t
}

func emitGo() []byte {
	var b bytes.Buffer
	p := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	p("// Code generated by gen (make proto). DO NOT EDIT.")
	p("//")
	p("// Source of truth: the descriptor table in ./gen. Edit that table and")
	p("// re-run `make proto`; CI regenerates and fails on drift.")
	p("")
	p("package pb")
	p("")
	p(`import "math"`)
	p("")
	p("// ServiceName is the fully-qualified gRPC service.")
	p("const ServiceName = %q", servicePackage+"."+serviceName)
	p("")
	p("// Method paths: the :path pseudo-header value of each RPC.")
	p("const (")
	for _, m := range methods {
		p("\tMethod%s = %q", m.name, "/"+servicePackage+"."+serviceName+"/"+m.name)
	}
	p(")")
	p("")
	p("// StreamingMethods marks the RPCs whose response is server-streaming.")
	p("var StreamingMethods = map[string]bool{")
	for _, m := range methods {
		if m.stream {
			p("\tMethod%s: true,", m.name)
		}
	}
	p("}")

	for _, msg := range messages {
		p("")
		for _, line := range strings.Split(msg.doc, "\n") {
			p("// %s", line)
		}
		p("type %s struct {", msg.name)
		for _, f := range msg.fields {
			if f.doc != "" {
				p("\t%s %s // %s", f.goName, goType(f), f.doc)
			} else {
				p("\t%s %s", f.goName, goType(f))
			}
		}
		p("}")
		p("")

		// Encoder.
		p("// AppendProto appends the message's proto3 encoding to b.")
		p("func (m *%s) AppendProto(b []byte) []byte {", msg.name)
		for _, f := range msg.fields {
			switch f.kind {
			case "sint64":
				p("\tb = appendZigzagField(b, %d, m.%s)", f.num, f.goName)
			case "int64":
				p("\tb = appendVarintField(b, %d, uint64(m.%s))", f.num, f.goName)
			case "uint64":
				p("\tb = appendVarintField(b, %d, m.%s)", f.num, f.goName)
			case "float":
				p("\tb = appendFloatField(b, %d, m.%s)", f.num, f.goName)
			case "bool":
				p("\tif m.%s {", f.goName)
				p("\t\tb = appendVarintField(b, %d, 1)", f.num)
				p("\t}")
			case "bytes":
				p("\tb = appendBytesField(b, %d, m.%s)", f.num, f.goName)
			case "string":
				p("\tb = appendStringField(b, %d, m.%s)", f.num, f.goName)
			case "message":
				if f.repeated {
					p("\tfor i := range m.%s {", f.goName)
					p("\t\tb = appendMessageField(b, %d, &m.%s[i])", f.num, f.goName)
					p("\t}")
				} else {
					p("\tb = appendMessageField(b, %d, &m.%s)", f.num, f.goName)
				}
			}
		}
		p("\treturn b")
		p("}")
		p("")

		// Decoder.
		p("// UnmarshalProto replaces the message with the decoding of data.")
		p("func (m *%s) UnmarshalProto(data []byte) error {", msg.name)
		p("\t*m = %s{}", msg.name)
		p("\tr := reader{buf: data}")
		p("\tfor {")
		p("\t\tnum, wt, ok := r.tag()")
		p("\t\tif !ok {")
		p("\t\t\tbreak")
		p("\t\t}")
		if len(msg.fields) == 0 {
			p("\t\t_ = num")
			p("\t\tr.skip(wt)")
		} else {
			p("\t\tswitch num {")
			for _, f := range msg.fields {
				p("\t\tcase %d:", f.num)
				wantWire := "wireVarint"
				switch f.kind {
				case "float":
					wantWire = "wireFixed32"
				case "bytes", "string", "message":
					wantWire = "wireBytes"
				}
				p("\t\t\tif wt != %s {", wantWire)
				p("\t\t\t\tr.skip(wt)")
				p("\t\t\t\tbreak")
				p("\t\t\t}")
				switch f.kind {
				case "sint64":
					p("\t\t\tm.%s = unzigzag(r.varint())", f.goName)
				case "int64":
					p("\t\t\tm.%s = int64(r.varint())", f.goName)
				case "uint64":
					p("\t\t\tm.%s = r.varint()", f.goName)
				case "float":
					p("\t\t\tm.%s = math.Float32frombits(r.fixed32())", f.goName)
				case "bool":
					p("\t\t\tm.%s = r.varint() != 0", f.goName)
				case "bytes":
					p("\t\t\tm.%s = append(m.%s[:0], r.bytes()...)", f.goName, f.goName)
				case "string":
					p("\t\t\tm.%s = string(r.bytes())", f.goName)
				case "message":
					if f.repeated {
						p("\t\t\tm.%s = append(m.%s, %s{})", f.goName, f.goName, f.msg)
						p("\t\t\tr.message(&m.%s[len(m.%s)-1])", f.goName, f.goName)
					} else {
						p("\t\t\tr.message(&m.%s)", f.goName)
					}
				}
			}
			p("\t\tdefault:")
			p("\t\t\tr.skip(wt)")
			p("\t\t}")
		}
		p("\t}")
		p("\treturn r.err")
		p("}")
	}

	src, err := format.Source(b.Bytes())
	if err != nil {
		log.Fatalf("generated Go does not parse: %v\n%s", err, b.Bytes())
	}
	return src
}

func emitProto() []byte {
	var b bytes.Buffer
	p := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	p("// Generated by gen (make proto) from the descriptor table in")
	p("// internal/serve/grpc/pb/gen. DO NOT EDIT.")
	p("//")
	p("// This file is the interop contract: compile it with protoc to talk to")
	p("// alayad from standard gRPC stacks in other languages. The Go build")
	p("// does not consume it — alaya.pb.go is generated from the same table.")
	p("")
	p(`syntax = "proto3";`)
	p("")
	p("package %s;", servicePackage)
	p("")
	p(`option go_package = "repro/internal/serve/grpc/pb";`)
	for _, msg := range messages {
		p("")
		for _, line := range strings.Split(msg.doc, "\n") {
			p("// %s", line)
		}
		p("message %s {", msg.name)
		for _, f := range msg.fields {
			if f.doc != "" {
				p("  %s %s = %d; // %s", protoType(f), f.protoName, f.num, f.doc)
			} else {
				p("  %s %s = %d;", protoType(f), f.protoName, f.num)
			}
		}
		p("}")
	}
	p("")
	p("// AlayaDB is the engine-facing decode service: session lifecycle plus")
	p("// the v2 step protocol. Tensor payloads ride inside frame bytes fields")
	p("// using the same binary encoding as the HTTP transport.")
	p("service %s {", serviceName)
	for _, m := range methods {
		p("  // %s", m.doc)
		out := m.out
		if m.stream {
			out = "stream " + out
		}
		p("  rpc %s(%s) returns (%s);", m.name, m.in, out)
	}
	p("}")
	return b.Bytes()
}

func main() {
	dir := flag.String("dir", "internal/serve/grpc/pb", "output directory")
	flag.Parse()

	for name, data := range map[string][]byte{
		"alaya.pb.go": emitGo(),
		"alaya.proto": emitProto(),
	} {
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
