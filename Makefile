# Single source of truth for build/test/bench invocations; CI runs these
# exact targets so local dev and the pipeline never drift.

GO ?= go

.PHONY: all build test race bench bench-alloc fmt vet

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-mode sweep of the concurrent layers (plus everything else; the serve,
# core and attention packages are the ones exercising the new locking).
race:
	$(GO) test -race ./...

# Full benchmark pass; use BENCHTIME=1x for the CI smoke run.
BENCHTIME ?= 1s
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run '^$$' ./...

# Allocation experiment: legacy vs pooled-scratch decode, tokens/sec and
# allocs/op, with a machine-readable report for the cross-PR perf trail.
ALLOC_JSON ?= BENCH_PR2.json
bench-alloc:
	$(GO) run ./cmd/alayabench -exp alloc -context 2048 -trials 2 -json $(ALLOC_JSON)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
