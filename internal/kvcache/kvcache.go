// Package kvcache implements the key/value cache that a decoder-only
// transformer accumulates during inference (§2 of the paper). The layout is
// one contiguous row-major matrix per (layer, kv-head) pair, which is the
// same logical shape HuggingFace's DynamicCache exposes and what AlayaDB's
// Session.Update ingests.
package kvcache

import (
	"fmt"

	"repro/internal/vec"
)

// Cache holds K and V matrices for every (layer, kv-head) pair. Tokens are
// appended in lockstep across heads of a layer; layers may momentarily
// differ in length during a prefill sweep.
//
// Cache is not safe for concurrent mutation of the same layer; concurrent
// reads are fine, and appends to *distinct* layers may proceed in parallel
// (each layer owns disjoint matrices) — the property core's parallel
// prefill sweep relies on.
type Cache struct {
	layers  int
	kvHeads int
	headDim int
	keys    []*vec.Matrix // indexed by layer*kvHeads + head
	values  []*vec.Matrix
}

// New returns an empty cache for the given model shape.
func New(layers, kvHeads, headDim int) *Cache {
	if layers <= 0 || kvHeads <= 0 || headDim <= 0 {
		panic(fmt.Sprintf("kvcache: invalid shape layers=%d kvHeads=%d headDim=%d", layers, kvHeads, headDim))
	}
	c := &Cache{
		layers:  layers,
		kvHeads: kvHeads,
		headDim: headDim,
		keys:    make([]*vec.Matrix, layers*kvHeads),
		values:  make([]*vec.Matrix, layers*kvHeads),
	}
	for i := range c.keys {
		c.keys[i] = vec.NewMatrix(0, headDim)
		c.values[i] = vec.NewMatrix(0, headDim)
	}
	return c
}

// Layers returns the number of layers.
func (c *Cache) Layers() int { return c.layers }

// KVHeads returns the number of key/value heads per layer.
func (c *Cache) KVHeads() int { return c.kvHeads }

// HeadDim returns the per-head vector dimensionality.
func (c *Cache) HeadDim() int { return c.headDim }

func (c *Cache) idx(layer, head int) int {
	if layer < 0 || layer >= c.layers || head < 0 || head >= c.kvHeads {
		panic(fmt.Sprintf("kvcache: (layer=%d, head=%d) out of range %dx%d", layer, head, c.layers, c.kvHeads))
	}
	return layer*c.kvHeads + head
}

// Append adds one token's key and value vectors for the given layer/head and
// returns the token's position index within that head.
func (c *Cache) Append(layer, head int, k, v []float32) int {
	i := c.idx(layer, head)
	pos := c.keys[i].Append(k)
	c.values[i].Append(v)
	return pos
}

// AppendAll appends per-head key and value vectors for one token across all
// heads of a layer. ks and vs must have length KVHeads().
func (c *Cache) AppendAll(layer int, ks, vs [][]float32) {
	if len(ks) != c.kvHeads || len(vs) != c.kvHeads {
		panic(fmt.Sprintf("kvcache: AppendAll got %d/%d heads, want %d", len(ks), len(vs), c.kvHeads))
	}
	for h := 0; h < c.kvHeads; h++ {
		c.Append(layer, h, ks[h], vs[h])
	}
}

// Keys returns the key matrix for (layer, head). The matrix aliases cache
// storage; callers must not mutate it.
func (c *Cache) Keys(layer, head int) *vec.Matrix { return c.keys[c.idx(layer, head)] }

// Values returns the value matrix for (layer, head), aliasing cache storage.
func (c *Cache) Values(layer, head int) *vec.Matrix { return c.values[c.idx(layer, head)] }

// KeyRowSpan returns the contiguous row-major storage of key rows [lo, hi)
// for (layer, head) — hi-lo rows of HeadDim() floats each, aliasing cache
// storage. It exposes the same span access the blocked vec kernels use
// internally (vec.Matrix.RowSpan: one bounds check per token range instead
// of one slice per row) to engines that scan KV storage directly; callers
// must not mutate the span.
func (c *Cache) KeyRowSpan(layer, head, lo, hi int) []float32 {
	return c.keys[c.idx(layer, head)].RowSpan(lo, hi)
}

// ValueRowSpan is KeyRowSpan for the value matrix.
func (c *Cache) ValueRowSpan(layer, head, lo, hi int) []float32 {
	return c.values[c.idx(layer, head)].RowSpan(lo, hi)
}

// SeqLen returns the number of tokens stored for the given layer (taken from
// head 0; heads of a layer always advance together through AppendAll).
func (c *Cache) SeqLen(layer int) int { return c.keys[c.idx(layer, 0)].Rows() }

// Bytes returns the total in-memory footprint of all K and V payloads.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.keys {
		n += c.keys[i].Bytes() + c.values[i].Bytes()
	}
	return n
}

// Clone returns a deep copy of the cache.
func (c *Cache) Clone() *Cache {
	out := &Cache{layers: c.layers, kvHeads: c.kvHeads, headDim: c.headDim,
		keys: make([]*vec.Matrix, len(c.keys)), values: make([]*vec.Matrix, len(c.values))}
	for i := range c.keys {
		out.keys[i] = c.keys[i].Clone()
		out.values[i] = c.values[i].Clone()
	}
	return out
}

// Truncate drops all tokens at position >= n in every layer and head. It is
// used to roll a cache back to a reusable prefix.
func (c *Cache) Truncate(n int) {
	for i := range c.keys {
		if c.keys[i].Rows() > n {
			c.keys[i] = c.keys[i].Slice(0, n).Clone()
			c.values[i] = c.values[i].Slice(0, n).Clone()
		}
	}
}
