package attention

import (
	"repro/internal/pool"

	"repro/internal/vec"
)

// Engine is the data-centric attention engine (§7.2): partial attention is
// applied to vectors where they reside — the device-cached window and the
// host-resident retrieved tokens — in parallel, and the partial outputs are
// aggregated by log-sum-exp weighting, avoiding any movement of KV data
// between the two sides.
type Engine struct {
	// Window is the device-resident token window.
	Window Window
	// Parallel computes the two partials concurrently when true, matching
	// the paper's overlap of device and host computation.
	Parallel bool
	// Pool schedules the partials when Parallel is set; nil uses the
	// process-wide pool.Default(). A saturated pool degrades to serial
	// execution instead of spawning unbounded goroutines.
	Pool *pool.Pool
}

// SparseWindowed computes sparse attention over the union of the engine's
// window and the retrieved token set. Retrieved indices that fall inside
// the window are dropped first so the union is disjoint.
func (e *Engine) SparseWindowed(q []float32, K, V *vec.Matrix, retrieved []int) []float32 {
	n := K.Rows()
	winIdx := e.Window.Indices(n)
	hostIdx := e.Window.Outside(retrieved, n)

	var winPart, hostPart Partial
	if e.Parallel {
		p := e.Pool
		if p == nil {
			p = pool.Default()
		}
		p.Run(
			func() { winPart = Over(q, K, V, winIdx) },
			func() { hostPart = Over(q, K, V, hostIdx) },
		)
	} else {
		winPart = Over(q, K, V, winIdx)
		hostPart = Over(q, K, V, hostIdx)
	}
	return Merge(winPart, hostPart)
}

// Union returns the disjoint union of the window's positions and the
// retrieved set for a context of n tokens — the token set SparseWindowed
// attends to.
func (e *Engine) Union(retrieved []int, n int) []int {
	winIdx := e.Window.Indices(n)
	return append(winIdx, e.Window.Outside(retrieved, n)...)
}
