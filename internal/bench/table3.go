package bench

import (
	"fmt"
	"io"

	"repro/internal/attention"
	"repro/internal/index"
	"repro/internal/index/flat"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/workload"
)

func init() {
	register("table3", "tokens k required per task for top-k to match full attention (Table 3)", runTable3)
}

// kLadder is the set of candidate k values searched by Table 3 and swept by
// Figure 6.
var kLadder = []int{1, 2, 5, 10, 20, 35, 50, 75, 100, 150, 200, 300, 400, 600}

// runTable3 reproduces Table 3: the smallest k at which top-k sparse
// attention matches full attention's accuracy, per LongBench-like task.
// Exact (flat) top-k isolates the query-type question from index recall.
func runTable3(s Scale, w io.Writer) error {
	m := model.New(s.Model)
	win := attention.Window{Sinks: 16, Recent: 32}

	fmt.Fprintf(w, "Table 3: k required per task (context %d tokens, %d trials)\n\n", s.ContextLen, s.Trials)
	t := &table{header: []string{"task", "k", "proportion", "planted criticals"}}

	for _, p := range workload.LongBench() {
		insts := make([]workload.Instance, s.Trials)
		caches := make([]*cacheBundle, s.Trials)
		fullCorrect := 0
		for i := range insts {
			insts[i] = workload.Generate(p, s.Seed+uint64(100*i), s.ContextLen, 64, s.Model.Vocab)
			caches[i] = newCacheBundle(m, insts[i].Doc)
			out := workload.Evaluate(m, insts[i], caches[i].fullAttend())
			if out.Correct {
				fullCorrect++
			}
		}

		needK := kLadder[len(kLadder)-1]
		for _, k := range kLadder {
			correct := 0
			for i := range insts {
				out := workload.Evaluate(m, insts[i], caches[i].topKAttend(win, k, s.Workers))
				if out.Correct {
					correct++
				}
			}
			if correct >= fullCorrect {
				needK = k
				break
			}
		}
		t.add(p.Name, fmt.Sprintf("%d", needK),
			fmt.Sprintf("%.2f%%", 100*float64(needK)/float64(s.ContextLen)),
			fmt.Sprintf("%d", p.Critical))
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: k spans 20 (TriviaQA, 0.24%) to 350 (Qasper, 9.67%) — no single k fits all tasks")
	return nil
}

// cacheBundle holds one instance's KV cache and exposes attend functions
// shared by several experiments.
type cacheBundle struct {
	m     *model.Model
	doc   *model.Document
	cache *kvcache.Cache
}

func newCacheBundle(m *model.Model, doc *model.Document) *cacheBundle {
	return &cacheBundle{m: m, doc: doc, cache: m.BuildKV(doc)}
}

// fullAttend returns an Attend over the whole context.
func (b *cacheBundle) fullAttend() workload.Attend {
	return func(layer, qHead int, q []float32) ([]float32, []int) {
		kv := b.m.KVGroup(qHead)
		return attention.Full(q, b.cache.Keys(layer, kv), b.cache.Values(layer, kv)), nil
	}
}

// topKAttend returns an Attend that uses exact top-k retrieval plus the
// window.
func (b *cacheBundle) topKAttend(win attention.Window, k, workers int) workload.Attend {
	return func(layer, qHead int, q []float32) ([]float32, []int) {
		kv := b.m.KVGroup(qHead)
		fx := flat.New(b.cache.Keys(layer, kv), workers)
		retrieved := index.IDs(fx.TopK(q, k))
		eng := attention.Engine{Window: win}
		out := eng.SparseWindowed(q, b.cache.Keys(layer, kv), b.cache.Values(layer, kv), retrieved)
		return out, eng.Union(retrieved, b.cache.SeqLen(layer))
	}
}

// diprAttend returns an Attend that uses exact DIPR retrieval plus the
// window, reporting the retrieved count through sizes (appended per call).
func (b *cacheBundle) diprAttend(win attention.Window, beta float32, workers int, sizes *[]int) workload.Attend {
	return func(layer, qHead int, q []float32) ([]float32, []int) {
		kv := b.m.KVGroup(qHead)
		fx := flat.New(b.cache.Keys(layer, kv), workers)
		cands, _ := fx.DIPR(q, beta)
		retrieved := index.IDs(cands)
		if sizes != nil {
			*sizes = append(*sizes, len(retrieved))
		}
		eng := attention.Engine{Window: win}
		out := eng.SparseWindowed(q, b.cache.Keys(layer, kv), b.cache.Values(layer, kv), retrieved)
		return out, eng.Union(retrieved, b.cache.SeqLen(layer))
	}
}
