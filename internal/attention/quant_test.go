package attention

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func quantFixture(rng *rand.Rand, n, d int) (K *vec.Matrix, qK *vec.QuantMatrix, V *vec.Matrix) {
	K = vec.NewMatrix(n, d)
	V = vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			K.Row(i)[j] = rng.Float32()*2 - 1
			V.Row(i)[j] = rng.Float32()*2 - 1
		}
	}
	// Snap the fp32 plane to the quantized one, as kvcache does.
	qK = vec.QuantizeMatrix(K)
	for i := 0; i < n; i++ {
		qK.DequantizeRow(i, K.Row(i))
	}
	return K, qK, V
}

// TestOverQ8WithinTolerance checks the documented tolerance of the SQ8
// partial: its output stays within a bound derived from the logit error
// bound of the quantized scoring, compared against the exact fp32 partial
// over the snapped plane.
func TestOverQ8WithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, d = 300, 32
	K, qK, V := quantFixture(rng, n, d)
	idx := make([]int, 0, n/2)
	for i := 0; i < n; i += 2 {
		idx = append(idx, i)
	}
	for trial := 0; trial < 10; trial++ {
		q := make([]float32, d)
		for j := range q {
			q[j] = rng.Float32()*2 - 1
		}
		exact := Over(q, K, V, idx)
		quant := OverQ8(q, qK, V, idx)
		if quant.Count != exact.Count {
			t.Fatalf("counts diverge: %d vs %d", quant.Count, exact.Count)
		}
		// A logit perturbation of delta changes softmax weights by at most
		// ~2*delta (relatively), and outputs are convex mixes of the same
		// value rows: bound the output gap by 4*delta*max|V|.
		var qq vec.QueryQ8
		qq.Quantize(q)
		delta := float64(qK.DotErrBound(&qq)) / math.Sqrt(d)
		var maxV float64
		for _, i := range idx {
			for _, x := range V.Row(i) {
				if a := math.Abs(float64(x)); a > maxV {
					maxV = a
				}
			}
		}
		tol := 4 * delta * maxV
		for j := range exact.Output {
			if diff := math.Abs(float64(exact.Output[j] - quant.Output[j])); diff > tol {
				t.Fatalf("trial %d dim %d: |%v - %v| = %v exceeds tolerance %v",
					trial, j, exact.Output[j], quant.Output[j], diff, tol)
			}
		}
		if math.Abs(quant.LSE-exact.LSE) > 2*delta+1e-6 {
			t.Fatalf("trial %d: LSE gap %v exceeds %v", trial, math.Abs(quant.LSE-exact.LSE), 2*delta)
		}
	}
}

// TestOverQ8Deterministic pins that the SQ8 partial is a pure function of
// codes and scales: scratch and allocating forms agree bitwise, as do
// repeated calls — the property the spill tier's bitwise reload identity
// rests on.
func TestOverQ8Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n, d = 128, 16
	_, qK, V := quantFixture(rng, n, d)
	q := make([]float32, d)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	idx := []int{3, 77, 12, 99, 64}
	var sc Scratch
	a := OverQ8(q, qK, V, idx)
	b := OverQ8Scratch(&sc, q, qK, V, idx)
	if a.LSE != b.LSE {
		t.Fatalf("LSE diverges: %v vs %v", a.LSE, b.LSE)
	}
	for j := range a.Output {
		if a.Output[j] != b.Output[j] {
			t.Fatalf("dim %d: %v vs %v", j, a.Output[j], b.Output[j])
		}
	}
	// Clone round trip (codes + scales) reproduces the partial bitwise.
	c := OverQ8(q, qK.Clone(), V, idx)
	for j := range a.Output {
		if a.Output[j] != c.Output[j] {
			t.Fatalf("clone dim %d: %v vs %v", j, a.Output[j], c.Output[j])
		}
	}
}

// TestOverQ8Empty covers the empty-subset partial.
func TestOverQ8Empty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	_, qK, V := quantFixture(rng, 10, 8)
	p := OverQ8(make([]float32, 8), qK, V, nil)
	if !math.IsInf(p.LSE, -1) || len(p.Output) != 8 {
		t.Fatalf("empty partial = %+v", p)
	}
}

// TestOverQ8ScratchZeroAllocWarm keeps the SQ8 partial on the
// allocation-free decode path.
func TestOverQ8ScratchZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const n, d = 512, 32
	_, qK, V := quantFixture(rng, n, d)
	q := make([]float32, d)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = (i * 7) % n
	}
	var sc Scratch
	OverQ8Scratch(&sc, q, qK, V, idx) // warm
	allocs := testing.AllocsPerRun(20, func() {
		OverQ8Scratch(&sc, q, qK, V, idx)
	})
	if allocs != 0 {
		t.Fatalf("warm OverQ8Scratch allocated %.1f times per run, want 0", allocs)
	}
}

// TestSparseWindowedQuantMergesBothSides exercises the engine split: the
// window partial is exact fp32, the host partial quantized; the merged
// output must stay within the host partial's tolerance of the all-fp32
// engine output.
func TestSparseWindowedQuantMergesBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const n, d = 256, 16
	K, qK, V := quantFixture(rng, n, d)
	q := make([]float32, d)
	for j := range q {
		q[j] = rng.Float32()*2 - 1
	}
	e := &Engine{Window: Window{Sinks: 4, Recent: 8}}
	retrieved := []int{20, 40, 60, 80, 100, 250} // 250 falls inside the window
	exact := e.SparseWindowed(q, K, V, retrieved)
	quant := e.SparseWindowedQuant(q, K, qK, V, retrieved)
	if len(exact) != len(quant) {
		t.Fatalf("output dims diverge: %d vs %d", len(exact), len(quant))
	}
	for j := range exact {
		if diff := math.Abs(float64(exact[j] - quant[j])); diff > 0.05 {
			t.Fatalf("dim %d: |%v - %v| = %v", j, exact[j], quant[j], diff)
		}
	}
}
