package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/index/graph"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/storage/vfs"
	"repro/internal/vec"
)

// Persistence layout: one directory per context, one vector file per
// (layer, kv-head) for keys and one for values; each index group's graph
// adjacency lives in the keys file of its kv head (ShareGQA) or in a
// dedicated file (per-query-head indexes); a JSON manifest records the
// document and graph entry points.
//
// manifest.json
// L<layer>H<head>.keys        KV keys + (shared) graph adjacency
// L<layer>H<head>.vals        KV values
// L<layer>G<group>.graph      adjacency when not GQA-shared
// L<layer>G<group>S<shard>.graph  per-shard adjacency when range-sharded
//
// A range-sharded context (manifest ShardEnds) stores every shard's graph
// in its own file regardless of GQA sharing, and its keys files carry no
// adjacency — the shard geometry, not the head grouping, determines the
// graph layout.

type manifest struct {
	Version   int           `json:"version"`
	Model     model.Config  `json:"model"`
	Seed      uint64        `json:"seed"`
	Tokens    []model.Token `json:"tokens"`
	Groups    int           `json:"groups"`
	ShareGQA  bool          `json:"share_gqa"`
	Entries   []int32       `json:"entries"` // graph entry points, layer*groups+group
	BlockSize int           `json:"block_size"`
	// Quant marks the SQ8 layout: every .keys file stores packed int8 codes
	// (vec.PackedWords(HeadDim) words per row — a quarter of the fp32
	// payload) instead of fp32 rows, with the per-row dequantization scales
	// here in the manifest, indexed layer*KVHeads+head. Values stay fp32.
	Quant       bool        `json:"quant,omitempty"`
	QuantScales [][]float32 `json:"quant_scales,omitempty"`
	// ShardEnds marks a range-sharded context: shard i covers rows
	// [ShardEnds[i-1], ShardEnds[i]) (from 0 for i == 0), with the last end
	// equal to len(Tokens). Entries is then indexed
	// (layer*Groups+group)*len(ShardEnds)+shard, each entry local to its
	// shard's rows, and every graph lives in L<l>G<g>S<s>.graph. Absent =
	// the legacy single-graph layout. Never set on a copy-on-write tail
	// (tails carry no graphs; the root's shards come back with the root).
	ShardEnds []int32 `json:"shard_ends,omitempty"`
	// BaseHash/BaseLen mark a copy-on-write tail: the directory holds only
	// rows [BaseLen, len(Tokens)) and no graphs; the leading BaseLen rows
	// (and all indexes) belong to the context whose DocHash is BaseHash,
	// persisted in its own directory exactly once. Tail rows are always
	// fp32 — the SQ8 plane lives with the base.
	BaseHash uint64 `json:"base_hash,omitempty"`
	BaseLen  int    `json:"base_len,omitempty"`
}

// SaveContext persists a stored context into dir (created if absent). A
// cache carrying the SQ8 plane saves its keys in code form — packed int8
// rows a quarter of the fp32 size, scales in the manifest — from which
// reload reconstructs the identical snapped fp32 plane. A copy-on-write
// context saves only what it owns: its divergent tail rows and a manifest
// pointer to its base; the caller (the spill tier) is responsible for
// persisting the base chain under its own hashes.
func (db *DB) SaveContext(ctx *Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: save context: %w", err)
	}
	mc := db.cfg.Model.Config()
	quant := ctx.cache.QuantEnabled()
	ns := ctx.nShards()
	man := manifest{
		Version:   1,
		Model:     mc,
		Seed:      ctx.doc.Seed,
		Tokens:    ctx.doc.Tokens,
		Groups:    ctx.groups,
		ShareGQA:  *db.cfg.ShareGQA,
		Entries:   make([]int32, mc.Layers*ctx.groups*ns),
		BlockSize: vfs.DefaultBlock,
		Quant:     quant,
	}
	if ns > 1 {
		man.ShardEnds = make([]int32, ns)
		for i, span := range ctx.shards {
			man.ShardEnds[i] = int32(span.Hi)
		}
	}
	if ctx.base != nil {
		man.BaseHash = ctx.base.hash
		if man.BaseHash == 0 {
			man.BaseHash = DocHash(ctx.base.doc)
		}
		man.BaseLen = ctx.baseLen
	}
	for i, g := range ctx.graphs {
		if g != nil {
			man.Entries[i] = g.Entry()
		}
	}
	if quant {
		man.QuantScales = make([][]float32, mc.Layers*mc.KVHeads)
	}

	for l := 0; l < mc.Layers; l++ {
		for h := 0; h < mc.KVHeads; h++ {
			keyDim := mc.HeadDim
			if quant {
				keyDim = vec.PackedWords(mc.HeadDim)
			}
			kf, err := vfs.Create(filepath.Join(dir, fmt.Sprintf("L%dH%d.keys", l, h)), vfs.DefaultBlock, keyDim)
			if err != nil {
				return err
			}
			if quant {
				if err := appendQuantRows(kf, ctx.cache.QuantKeys(l, h), &man, l*mc.KVHeads+h); err != nil {
					kf.Close()
					return err
				}
			} else if err := kf.AppendMatrix(ctx.cache.Keys(l, h)); err != nil {
				kf.Close()
				return err
			}
			if man.ShareGQA && ns == 1 && ctx.graphs != nil {
				g := ctx.graphs[l*ctx.groups+h]
				if g != nil {
					if err := kf.WriteAdjacency(adjacencyOf(g)); err != nil {
						kf.Close()
						return err
					}
				}
			}
			if err := kf.Close(); err != nil {
				return err
			}

			vf, err := vfs.Create(filepath.Join(dir, fmt.Sprintf("L%dH%d.vals", l, h)), vfs.DefaultBlock, mc.HeadDim)
			if err != nil {
				return err
			}
			if err := vf.AppendMatrix(ctx.cache.Values(l, h)); err != nil {
				vf.Close()
				return err
			}
			if err := vf.Close(); err != nil {
				return err
			}
		}
		if (!man.ShareGQA || ns > 1) && ctx.graphs != nil {
			for g := 0; g < ctx.groups; g++ {
				for sh := 0; sh < ns; sh++ {
					gr := ctx.graphs[(l*ctx.groups+g)*ns+sh]
					if gr == nil {
						continue
					}
					name := fmt.Sprintf("L%dG%d.graph", l, g)
					if ns > 1 {
						name = fmt.Sprintf("L%dG%dS%d.graph", l, g, sh)
					}
					gf, err := vfs.Create(filepath.Join(dir, name), vfs.DefaultBlock, mc.HeadDim)
					if err != nil {
						return err
					}
					if err := gf.WriteAdjacency(adjacencyOf(gr)); err != nil {
						gf.Close()
						return err
					}
					if err := gf.Close(); err != nil {
						return err
					}
				}
			}
		}
	}

	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644)
}

// LoadContext restores a context saved by SaveContext and registers it in
// the DB for session reuse. The manifest's model configuration must match
// the DB's. A copy-on-write tail resolves its base against the resident
// store only: load chains root-first. Registration goes through the
// normal store lifecycle: the loaded context counts against the context
// budget and may evict (and spill) older residents.
func (db *DB) LoadContext(dir string) (*Context, error) {
	ctx, err := db.readContextDir(dir, (*vfs.FS).ReadAll, db.residentBase)
	if err != nil {
		return nil, err
	}
	if err := db.registerContext(ctx); err != nil {
		return nil, err
	}
	return ctx, nil
}

// residentBase resolves a base hash against the resident store only.
func (db *DB) residentBase(hash uint64) (*Context, error) {
	db.mu.RLock()
	ctx := db.byHash[hash]
	db.mu.RUnlock()
	if ctx == nil {
		return nil, fmt.Errorf("core: base context %016x is not resident", hash)
	}
	return ctx, nil
}

// appendQuantRows writes one head's SQ8 key rows into kf in packed code
// form (vec.PackRow) and records the per-row scales in the manifest slot.
func appendQuantRows(kf *vfs.FS, qm *vec.QuantMatrix, man *manifest, slot int) error {
	words := make([]float32, vec.PackedWords(qm.Cols()))
	scales := make([]float32, qm.Rows())
	for i := 0; i < qm.Rows(); i++ {
		qm.PackRow(i, words)
		if _, err := kf.AppendVector(words); err != nil {
			return err
		}
		scales[i] = qm.Scale(i)
	}
	man.QuantScales[slot] = scales
	return nil
}

// matrixReader materializes the vector payload of one open spill file. The
// direct path is (*vfs.FS).ReadAll; the spill tier substitutes a reader
// that pages blocks through the shared buffer manager (tier.go).
type matrixReader func(fs *vfs.FS) (*vec.Matrix, error)

// readManifest loads and validates a context directory's manifest against
// the DB's configuration.
func (db *DB) readManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("core: load context: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("core: parse manifest: %w", err)
	}
	mc := db.cfg.Model.Config()
	if man.Model != mc {
		return nil, fmt.Errorf("core: context was saved for model %+v, DB runs %+v", man.Model, mc)
	}
	if man.ShareGQA != *db.cfg.ShareGQA {
		return nil, fmt.Errorf("core: context GQA sharing (%v) differs from DB (%v)", man.ShareGQA, *db.cfg.ShareGQA)
	}
	// The manifest is operator-editable JSON: geometry fields feed
	// allocation sizes and slot indexes, so a corrupt or crafted manifest
	// must surface as an error here, never a panic downstream (the vfs
	// layer applies the same discipline to its binary blocks).
	if want := db.indexGroups(); man.Groups != want {
		return nil, fmt.Errorf("core: manifest has %d index groups, DB expects %d", man.Groups, want)
	}
	ns := 1
	if len(man.ShardEnds) > 0 {
		if len(man.ShardEnds) < 2 {
			return nil, fmt.Errorf("core: manifest shard ends %v describe fewer than 2 shards", man.ShardEnds)
		}
		if man.BaseHash != 0 {
			return nil, fmt.Errorf("core: copy-on-write tail %016x saved with shard ends", man.BaseHash)
		}
		prev := int32(0)
		for i, end := range man.ShardEnds {
			if end <= prev {
				return nil, fmt.Errorf("core: manifest shard end %d (%d) not past previous end %d", i, end, prev)
			}
			prev = end
		}
		if int(prev) != len(man.Tokens) {
			return nil, fmt.Errorf("core: manifest shard ends stop at %d of %d tokens", prev, len(man.Tokens))
		}
		ns = len(man.ShardEnds)
	}
	if len(man.Entries) != mc.Layers*man.Groups*ns {
		return nil, fmt.Errorf("core: manifest has %d graph entries for %d slots", len(man.Entries), mc.Layers*man.Groups*ns)
	}
	for i, e := range man.Entries {
		// Sharded entries are node ids local to their shard's rows.
		rows := len(man.Tokens)
		if ns > 1 {
			sh := i % ns
			rows = int(man.ShardEnds[sh])
			if sh > 0 {
				rows -= int(man.ShardEnds[sh-1])
			}
		}
		if e < 0 || (int(e) >= rows && !(e == 0 && rows == 0)) {
			return nil, fmt.Errorf("core: manifest entry %d (%d) out of range for %d rows", i, e, rows)
		}
	}
	if man.BaseHash != 0 {
		// Copy-on-write tail: the directory owns rows [BaseLen, Tokens) in
		// fp32 — the SQ8 plane, like the graphs, lives with the base — so the
		// quant layout check compares against the base's manifest, not this
		// one.
		if man.Quant {
			return nil, fmt.Errorf("core: copy-on-write tail %016x saved with a quantized key plane", man.BaseHash)
		}
		if man.BaseLen <= 0 || man.BaseLen > len(man.Tokens) {
			return nil, fmt.Errorf("core: manifest base length %d out of range for %d tokens", man.BaseLen, len(man.Tokens))
		}
	} else {
		if man.BaseLen != 0 {
			return nil, fmt.Errorf("core: manifest has base length %d but no base hash", man.BaseLen)
		}
		if man.Quant != db.cfg.QuantKeys {
			return nil, fmt.Errorf("core: context key layout (quant=%v) differs from DB (quant=%v)", man.Quant, db.cfg.QuantKeys)
		}
	}
	if man.Quant {
		// The scales size key-row reconstruction: a crafted manifest must
		// fail here, not index out of range while dequantizing.
		if len(man.QuantScales) != mc.Layers*mc.KVHeads {
			return nil, fmt.Errorf("core: manifest has %d scale slots for %d heads", len(man.QuantScales), mc.Layers*mc.KVHeads)
		}
		for i, s := range man.QuantScales {
			if len(s) != len(man.Tokens) {
				return nil, fmt.Errorf("core: scale slot %d has %d scales for %d tokens", i, len(s), len(man.Tokens))
			}
		}
	}
	return &man, nil
}

// baseResolver maps a manifest's base hash to a live context when a
// copy-on-write tail is read back. LoadContext resolves against resident
// contexts only; the spill tier falls through to a recursive reload.
type baseResolver func(hash uint64) (*Context, error)

// readContextDir rebuilds a context from a directory written by
// SaveContext, reading vector payloads through read. A copy-on-write tail
// resolves its base through resolveBase and re-attaches to the chain; the
// restored context then owns only its tail rows, exactly as stored. It
// does not register the context; callers decide the lifecycle
// (LoadContext registers, the spill tier registers through its reload
// path).
func (db *DB) readContextDir(dir string, read matrixReader, resolveBase baseResolver) (*Context, error) {
	man, err := db.readManifest(dir)
	if err != nil {
		return nil, err
	}
	mc := db.cfg.Model.Config()

	ctx := &Context{
		doc:    &model.Document{Seed: man.Seed, Tokens: man.Tokens},
		cache:  kvcache.New(mc.Layers, mc.KVHeads, mc.HeadDim),
		groups: man.Groups,
	}
	if man.BaseHash != 0 {
		if resolveBase == nil {
			return nil, fmt.Errorf("core: context in %s is a copy-on-write tail of %016x; no base resolver", dir, man.BaseHash)
		}
		base, err := resolveBase(man.BaseHash)
		if err != nil {
			return nil, fmt.Errorf("core: resolving base %016x: %w", man.BaseHash, err)
		}
		if base.Len() < man.BaseLen || commonPrefix(base.doc, ctx.doc) < man.BaseLen {
			return nil, fmt.Errorf("core: base %016x does not cover the %d-token shared prefix", man.BaseHash, man.BaseLen)
		}
		ctx.base, ctx.baseLen = base, man.BaseLen
	} else {
		if len(man.ShardEnds) > 0 {
			ctx.shards = make([]index.Span, len(man.ShardEnds))
			lo := 0
			for i, end := range man.ShardEnds {
				ctx.shards[i] = index.Span{Lo: lo, Hi: int(end)}
				lo = int(end)
			}
		}
		ctx.graphs = make([]*graph.Graph, mc.Layers*man.Groups*ctx.nShards())
	}
	if man.Quant {
		ctx.cache.EnableQuantKeys() // empty cache: appends maintain the plane
	}
	var codes []int8
	if man.Quant {
		codes = make([]int8, mc.HeadDim)
	}
	for l := 0; l < mc.Layers; l++ {
		for h := 0; h < mc.KVHeads; h++ {
			kf, err := vfs.Open(filepath.Join(dir, fmt.Sprintf("L%dH%d.keys", l, h)))
			if err != nil {
				return nil, err
			}
			keys, err := read(kf)
			if err != nil {
				kf.Close()
				return nil, err
			}
			var adj [][]int32
			if man.ShareGQA && len(man.ShardEnds) == 0 {
				if adj, err = kf.ReadAdjacency(); err != nil {
					kf.Close()
					return nil, err
				}
			}
			kf.Close()

			vf, err := vfs.Open(filepath.Join(dir, fmt.Sprintf("L%dH%d.vals", l, h)))
			if err != nil {
				return nil, err
			}
			vals, err := read(vf)
			if err != nil {
				vf.Close()
				return nil, err
			}
			vf.Close()

			if keys.Rows() != vals.Rows() {
				return nil, fmt.Errorf("core: layer %d head %d: %d keys vs %d values", l, h, keys.Rows(), vals.Rows())
			}
			if man.Quant {
				// Packed SQ8 rows: reconstruct codes bit-exactly and let the
				// cache materialize the snapped fp32 plane by dequantization.
				if want := vec.PackedWords(mc.HeadDim); keys.Cols() != want {
					return nil, fmt.Errorf("core: layer %d head %d: packed key width %d, want %d", l, h, keys.Cols(), want)
				}
				scales := man.QuantScales[l*mc.KVHeads+h]
				if keys.Rows() != len(scales) {
					return nil, fmt.Errorf("core: layer %d head %d: %d key rows for %d scales", l, h, keys.Rows(), len(scales))
				}
				for i := 0; i < keys.Rows(); i++ {
					vec.UnpackCodes(keys.Row(i), codes)
					ctx.cache.AppendQuantized(l, h, codes, scales[i], vals.Row(i))
				}
			} else {
				for i := 0; i < keys.Rows(); i++ {
					ctx.cache.Append(l, h, keys.Row(i), vals.Row(i))
				}
			}
			if man.ShareGQA && adj != nil && ctx.graphs != nil {
				slot := l*man.Groups + h
				g := graph.FromAdjacency(ctx.cache.Keys(l, h), adj, man.Entries[slot], db.cfg.Graph)
				g.AttachQuantKeys(ctx.cache.QuantKeys(l, h))
				ctx.graphs[slot] = g
			}
		}
		if ns := ctx.nShards(); ns > 1 && ctx.graphs != nil {
			// Range-sharded layout: one file per (group, shard), each graph
			// built over a slice view of the full key plane so shard node ids
			// stay span-local, exactly as BuildIndexes constructed them.
			for g := 0; g < man.Groups; g++ {
				kv := db.kvHeadOfGroup(g)
				keys := ctx.cache.Keys(l, kv)
				qk := ctx.cache.QuantKeys(l, kv)
				for sh := 0; sh < ns; sh++ {
					path := filepath.Join(dir, fmt.Sprintf("L%dG%dS%d.graph", l, g, sh))
					if _, err := os.Stat(path); err != nil {
						continue
					}
					gf, err := vfs.Open(path)
					if err != nil {
						return nil, err
					}
					adj, err := gf.ReadAdjacency()
					gf.Close()
					if err != nil {
						return nil, err
					}
					slot := (l*man.Groups+g)*ns + sh
					span := ctx.shards[sh]
					gr := graph.FromAdjacency(keys.Slice(span.Lo, span.Hi), adj, man.Entries[slot], db.cfg.Graph)
					if qk != nil {
						gr.AttachQuantKeys(qk.Slice(span.Lo, span.Hi))
					}
					ctx.graphs[slot] = gr
				}
			}
		} else if !man.ShareGQA && ctx.graphs != nil {
			for g := 0; g < man.Groups; g++ {
				path := filepath.Join(dir, fmt.Sprintf("L%dG%d.graph", l, g))
				if _, err := os.Stat(path); err != nil {
					continue
				}
				gf, err := vfs.Open(path)
				if err != nil {
					return nil, err
				}
				adj, err := gf.ReadAdjacency()
				gf.Close()
				if err != nil {
					return nil, err
				}
				slot := l*man.Groups + g
				kv := db.kvHeadOfGroup(g)
				gr := graph.FromAdjacency(ctx.cache.Keys(l, kv), adj, man.Entries[slot], db.cfg.Graph)
				gr.AttachQuantKeys(ctx.cache.QuantKeys(l, kv))
				ctx.graphs[slot] = gr
			}
		}
	}
	if want := ctx.doc.Len() - man.BaseLen; ctx.cache.SeqLen(0) != want {
		return nil, fmt.Errorf("core: loaded cache holds %d tokens, manifest expects %d owned rows", ctx.cache.SeqLen(0), want)
	}
	return ctx, nil
}

// adjacencyOf extracts a graph's adjacency lists.
func adjacencyOf(g *graph.Graph) [][]int32 {
	adj := make([][]int32, g.Len())
	for i := range adj {
		adj[i] = g.Neighbors(int32(i))
	}
	return adj
}
