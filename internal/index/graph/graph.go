// Package graph implements the fine-grained graph index of §6.2: a
// RoarGraph-like [28] proximity graph built as a *projected bipartite
// graph*. Long-context sparse attention is an out-of-distribution search
// problem — decode-time queries are not distributed like the keys — so the
// graph is built from (sampled) historical query vectors: each query's
// exact nearest keys are linked to each other (projection), then a
// connectivity-enhancement pass links every key into the searchable
// component. Search is best-first beam search by inner product.
//
// The same structure also exposes the raw adjacency needed by the DIPRS
// traversal in internal/query.
package graph

import (
	"fmt"
	"sync"

	"repro/internal/index"
	"repro/internal/index/knn"
	"repro/internal/vec"
)

// Config tunes graph construction.
type Config struct {
	// Degree is the maximum out-degree M of a node (default 24).
	Degree int
	// QueryKNN is κ, the number of exact key neighbours computed per
	// training query in the bipartite stage (default 16).
	QueryKNN int
	// EfConstruction is the beam width used during the connectivity
	// enhancement pass (default 64).
	EfConstruction int
	// Workers bounds build parallelism (default 1).
	Workers int
	// DisableBridges turns off the pruning exemption for bipartite bridge
	// edges. Exists only for the ablation measuring what the bridges buy
	// (out-of-distribution targets become unreachable without them).
	DisableBridges bool
}

func (c *Config) defaults() {
	if c.Degree <= 0 {
		c.Degree = 24
	}
	if c.QueryKNN <= 0 {
		c.QueryKNN = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 64
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
}

// Graph is an immutable proximity graph over a key matrix. It references
// the matrix without copying it. Safe for concurrent search.
//
// An SQ8 plane may be attached after construction (AttachQuantKeys); the
// graph structure itself never changes, but DIPRS traversals in
// internal/query then score visited nodes through the fused int8 kernels
// and rerank in fp32 (see query.QuantGraph).
type Graph struct {
	keys  *vec.Matrix
	qkeys *vec.QuantMatrix // optional SQ8 scoring plane
	adj   [][]int32
	prot  [][]int32 // bipartite bridge edges, exempt from pruning (build only)
	entry int32
	cfg   Config
}

// maxProtected bounds the pruning-exempt bridge edges per node.
const maxProtected = 4

// Build constructs the graph for keys. If queries is non-nil and non-empty,
// the RoarGraph bipartite construction is used: stage (i) links each query
// to its exact nearest keys (the kNN step the paper offloads to cuVS),
// stage (ii) projects those lists into key–key edges and enhances
// connectivity. With no queries, a plain incremental insertion build
// produces an NSW-style graph (used when no query history exists yet).
func Build(keys, queries *vec.Matrix, cfg Config) *Graph {
	cfg.defaults()
	n := keys.Rows()
	g := &Graph{keys: keys, adj: make([][]int32, n), cfg: cfg}
	if n == 0 {
		return g
	}
	g.entry = maxNormRow(keys)
	if queries != nil && queries.Rows() > 0 {
		g.buildBipartite(queries)
	} else {
		g.buildIncremental()
	}
	g.enhanceConnectivity()
	g.mergeProtected()
	return g
}

// FromAdjacency reconstructs a graph from a persisted adjacency structure
// (see internal/core's SaveContext/LoadContext). The adjacency is trusted
// as built; no pruning or enhancement runs.
func FromAdjacency(keys *vec.Matrix, adj [][]int32, entry int32, cfg Config) *Graph {
	cfg.defaults()
	if len(adj) != keys.Rows() {
		panic(fmt.Sprintf("graph: adjacency has %d nodes for %d keys", len(adj), keys.Rows()))
	}
	if len(adj) > 0 && (entry < 0 || int(entry) >= len(adj)) {
		panic(fmt.Sprintf("graph: entry %d out of range", entry))
	}
	return &Graph{keys: keys, adj: adj, entry: entry, cfg: cfg}
}

// mergeProtected folds the pruning-exempt bridge edges into the final
// adjacency (deduplicated) and drops the side structure.
func (g *Graph) mergeProtected() {
	if g.prot == nil {
		return
	}
	for u := range g.prot {
		for _, v := range g.prot[u] {
			g.addEdge(int32(u), v)
		}
	}
	g.prot = nil
}

// maxNormRow picks the row with the largest Euclidean norm — a standard
// entry point for inner-product graph search (it upper-bounds many scores).
func maxNormRow(m *vec.Matrix) int32 {
	best, at := float32(-1), int32(0)
	for i := 0; i < m.Rows(); i++ {
		if n := vec.Norm2(m.Row(i)); n > best {
			best, at = n, int32(i)
		}
	}
	return at
}

// buildBipartite is the RoarGraph path.
func (g *Graph) buildBipartite(queries *vec.Matrix) {
	nbrs := knn.Exact(queries, g.keys, g.cfg.QueryKNN, g.cfg.Workers)
	g.prot = make([][]int32, len(g.adj))
	// Projection: within each query's neighbour list, link the pivot (best
	// key) to the rest and chain successive keys, seeding edges between keys
	// that co-occur as answers to the same query. The runner-up → pivot
	// edges are the *bridges* that make out-of-distribution targets
	// reachable: a decode query's best key may be nowhere near the keys'
	// own similarity structure, so these edges must survive pruning.
	for _, list := range nbrs {
		if len(list) == 0 {
			continue
		}
		pivot := list[0].ID
		for j := 1; j < len(list); j++ {
			if g.cfg.DisableBridges {
				g.addEdge(list[j].ID, pivot)
			} else {
				g.addProtected(list[j].ID, pivot)
			}
			g.addEdge(pivot, list[j].ID)
			if j+1 < len(list) {
				g.addEdge(list[j].ID, list[j+1].ID)
			}
		}
	}
	g.pruneAll()
}

// addProtected records a pruning-exempt bridge edge u→v (bounded per node).
func (g *Graph) addProtected(u, v int32) {
	if u == v || len(g.prot[u]) >= maxProtected {
		return
	}
	for _, w := range g.prot[u] {
		if w == v {
			return
		}
	}
	g.prot[u] = append(g.prot[u], v)
}

// buildIncremental inserts keys one at a time, linking each to its nearest
// already-inserted keys via graph search (NSW-style flat build). One search
// state and one prune scratch serve the whole sweep — insertion cost is
// dominated by scoring, not allocation.
func (g *Graph) buildIncremental() {
	n := g.keys.Rows()
	if n == 0 {
		return
	}
	var st SearchState
	var ps pruneScratch
	// Insert in index order; search the partial graph for neighbours.
	for i := 1; i < n; i++ {
		q := g.keys.Row(i)
		cands := g.searchInternal(&st, q, g.cfg.Degree, g.cfg.EfConstruction, int32(i))
		for _, c := range cands {
			g.addEdge(int32(i), c.ID)
			g.addEdge(c.ID, int32(i))
			if len(g.adj[c.ID]) > 2*g.cfg.Degree {
				g.pruneWith(&ps, c.ID)
			}
		}
	}
	g.pruneAll()
}

// enhanceConnectivity guarantees every node is reachable from the entry
// point: nodes not reached by a BFS are linked to their nearest reachable
// neighbours found by search (RoarGraph stage (ii)).
func (g *Graph) enhanceConnectivity() {
	n := len(g.adj)
	var st SearchState
	for pass := 0; pass < 3; pass++ {
		reach := g.reachable()
		fixed := 0
		for i := 0; i < n; i++ {
			if reach[i] {
				continue
			}
			cands := g.searchInternal(&st, g.keys.Row(i), 4, g.cfg.EfConstruction, -1)
			for _, c := range cands {
				if c.ID == int32(i) {
					continue
				}
				g.addEdge(c.ID, int32(i))
				g.addEdge(int32(i), c.ID)
				fixed++
			}
			if len(g.adj[i]) == 0 {
				// Isolated even after search (e.g. all-zero vectors): chain
				// to the entry point.
				g.addEdge(g.entry, int32(i))
				g.addEdge(int32(i), g.entry)
			}
		}
		if fixed == 0 {
			break
		}
	}
	g.pruneAll()
	// Pruning can re-orphan nodes; a final pass links any stragglers
	// directly without pruning again.
	reach := g.reachable()
	for i := 0; i < n; i++ {
		if !reach[i] {
			g.adj[g.entry] = append(g.adj[g.entry], int32(i))
			g.adj[i] = append(g.adj[i], g.entry)
		}
	}
}

// reachable returns the BFS reachability set from the entry point.
func (g *Graph) reachable() []bool {
	n := len(g.adj)
	seen := make([]bool, n)
	if n == 0 {
		return seen
	}
	queue := []int32{g.entry}
	seen[g.entry] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// addEdge appends v to u's adjacency if absent.
func (g *Graph) addEdge(u, v int32) {
	if u == v {
		return
	}
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
}

// pruneScratch is the reusable working set of a pruning sweep: the scored
// candidate list, the selected-neighbour buffer, and the membership bitset
// the backfill pass uses (an epoch-cleared VisitSet, replacing the
// per-prune map[int32]bool allocation).
type pruneScratch struct {
	cands    []index.Candidate
	selected []int32
	have     index.VisitSet
}

// pruneWith trims node u's adjacency to Degree using a diversity heuristic:
// neighbours are admitted best-first (by inner product with u), and a
// candidate dominated by an already-selected neighbour — closer to that
// neighbour than to u in L2 — is skipped. This is the occlusion rule used
// by HNSW/Vamana, and keeps edges spread across directions. Protected
// bridge edges are merged back in afterwards, over and above Degree. The
// surviving neighbour list is written back into adj[u]'s existing storage.
func (g *Graph) pruneWith(ps *pruneScratch, u int32) {
	adj := g.adj[u]
	if len(adj) <= g.cfg.Degree {
		return
	}
	uRow := g.keys.Row(int(u))
	cands := ps.cands[:0]
	for _, v := range adj {
		cands = append(cands, index.Candidate{ID: v, Score: vec.Dot(uRow, g.keys.Row(int(v)))})
	}
	ps.cands = cands
	sortCandidates(cands)
	selected := ps.selected[:0]
	for _, c := range cands {
		if len(selected) >= g.cfg.Degree {
			break
		}
		cRow := g.keys.Row(int(c.ID))
		distToU := vec.L2Distance(uRow, cRow)
		dominated := false
		for _, s := range selected {
			if vec.L2Distance(g.keys.Row(int(s)), cRow) < distToU {
				dominated = true
				break
			}
		}
		if !dominated {
			selected = append(selected, c.ID)
		}
	}
	// Backfill with best-scoring skipped candidates if diversity left slots.
	if len(selected) < g.cfg.Degree {
		ps.have.Reset(len(g.adj))
		for _, s := range selected {
			ps.have.Add(int(s))
		}
		for _, c := range cands {
			if len(selected) >= g.cfg.Degree {
				break
			}
			if !ps.have.Visited(int(c.ID)) {
				selected = append(selected, c.ID)
				ps.have.Add(int(c.ID))
			}
		}
	}
	ps.selected = selected
	// Pruning only shrinks, so the surviving list fits in adj[u]'s storage.
	g.adj[u] = append(g.adj[u][:0], selected...)
}

func (g *Graph) pruneAll() {
	var wg sync.WaitGroup
	n := len(g.adj)
	chunk := (n + g.cfg.Workers - 1) / g.cfg.Workers
	for w := 0; w < g.cfg.Workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var ps pruneScratch // one scratch per worker, reused across its range
			for i := lo; i < hi; i++ {
				g.pruneWith(&ps, int32(i))
			}
		}(lo, hi)
	}
	wg.Wait()
}

func sortCandidates(cs []index.Candidate) {
	// Insertion sort: candidate lists are short (≤ a few × Degree).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Score > cs[j-1].Score; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// Len returns the number of indexed vectors.
func (g *Graph) Len() int { return len(g.adj) }

// Entry returns the search entry point.
func (g *Graph) Entry() int32 { return g.entry }

// Neighbors returns node i's out-neighbours. Callers must not mutate the
// returned slice.
func (g *Graph) Neighbors(i int32) []int32 { return g.adj[i] }

// Vector returns the key vector of node i (aliasing index storage).
func (g *Graph) Vector(i int32) []float32 { return g.keys.Row(int(i)) }

// Keys returns the underlying key matrix.
func (g *Graph) Keys() *vec.Matrix { return g.keys }

// AttachQuantKeys attaches an SQ8 scoring plane. qm must shadow the key
// matrix row for row (kvcache's quantized plane provides exactly that);
// attaching nil detaches. Build and beam search are unaffected — only the
// DIPRS traversal in internal/query consults the plane.
func (g *Graph) AttachQuantKeys(qm *vec.QuantMatrix) {
	if qm != nil && qm.Rows() != g.keys.Rows() {
		panic(fmt.Sprintf("graph: quant plane has %d rows for %d keys", qm.Rows(), g.keys.Rows()))
	}
	g.qkeys = qm
}

// QuantKeys returns the attached SQ8 plane, or nil. It satisfies
// query.QuantGraph.
func (g *Graph) QuantKeys() *vec.QuantMatrix { return g.qkeys }

// Degree returns the configured maximum out-degree.
func (g *Graph) Degree() int { return g.cfg.Degree }

// Bytes returns the memory footprint of the adjacency structure (the index
// itself, excluding the vectors it points at).
func (g *Graph) Bytes() int64 {
	var n int64
	for _, a := range g.adj {
		n += int64(len(a)) * 4
	}
	return n + int64(len(g.adj))*24 // slice headers
}

// SearchState is the reusable working set of one search goroutine: the
// visited set (cleared by epoch counter, not reallocation), the frontier
// and result heaps, and the sorted output buffer. Results returned through
// a state alias it and are valid until its next use. The zero value is
// ready; a state serves one goroutine at a time.
type SearchState struct {
	visited  index.VisitSet
	frontier index.MaxHeap
	results  index.MinHeap
	out      []index.Candidate
}

// TopK implements index.Searcher via beam search with ef = max(2k, 64).
func (g *Graph) TopK(q []float32, k int) []index.Candidate {
	ef := 2 * k
	if ef < 64 {
		ef = 64
	}
	res := g.SearchEf(q, k, ef)
	return res
}

// SearchEf performs best-first beam search with beam width ef and returns
// the best k results found. Allocating form of SearchEfState.
func (g *Graph) SearchEf(q []float32, k, ef int) []index.Candidate {
	var st SearchState
	return g.searchInternal(&st, q, k, ef, -1)
}

// SearchEfState is SearchEf running entirely inside st's arena; a warm
// state makes repeated searches allocation-free. The result aliases st.
func (g *Graph) SearchEfState(st *SearchState, q []float32, k, ef int) []index.Candidate {
	return g.searchInternal(st, q, k, ef, -1)
}

// searchInternal is the beam search core. limit >= 0 restricts the search
// to nodes with id < limit (used by the incremental build, where nodes >=
// limit are not yet inserted).
func (g *Graph) searchInternal(st *SearchState, q []float32, k, ef int, limit int32) []index.Candidate {
	n := len(g.adj)
	if n == 0 || k <= 0 {
		return nil
	}
	if ef < k {
		ef = k
	}
	start := g.entry
	if limit >= 0 && start >= limit {
		start = 0 // node 0 is always inserted first in incremental builds
		if limit == 0 {
			return nil
		}
	}
	st.visited.Reset(n)
	st.visited.Add(int(start))
	startScore := vec.Dot(q, g.keys.Row(int(start)))

	frontier := append(st.frontier[:0], index.Candidate{ID: start, Score: startScore})
	results := append(st.results[:0], index.Candidate{ID: start, Score: startScore})

	for frontier.Len() > 0 {
		cur := frontier.PopValue()
		if results.Len() >= ef && cur.Score < results[0].Score {
			break
		}
		for _, v := range g.adj[cur.ID] {
			if limit >= 0 && v >= limit {
				continue
			}
			if !st.visited.Visit(int(v)) {
				continue
			}
			s := vec.Dot(q, g.keys.Row(int(v)))
			if results.Len() < ef || s > results[0].Score {
				frontier.PushValue(index.Candidate{ID: v, Score: s})
				results.PushBounded(index.Candidate{ID: v, Score: s}, ef)
			}
		}
	}
	st.frontier, st.results = frontier[:0], results[:0]
	st.out = results.SortedInto(st.out)
	sorted := st.out
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// Validate checks structural invariants: in-range neighbour ids, no
// self-loops, degree bound respected (after build), entry reachability of
// every node. Intended for tests and the alayactl doctor command.
func (g *Graph) Validate() error {
	n := len(g.adj)
	for i, adj := range g.adj {
		for _, v := range adj {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", i, v)
			}
			if int(v) == i {
				return fmt.Errorf("graph: node %d has a self-loop", i)
			}
		}
	}
	reach := g.reachable()
	for i, ok := range reach {
		if !ok {
			return fmt.Errorf("graph: node %d unreachable from entry %d", i, g.entry)
		}
	}
	return nil
}
