package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/index/flat"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/workload"
)

func init() {
	register("fig12", "filter-based DIPRS recall & latency vs reuse ratio (Figure 12)", runFig12)
}

// runFig12 reproduces Figure 12's micro-benchmark: a fixed prefix of a
// stored context is reused while the stored context (and thus the index
// the search runs over) grows, shrinking the reuse ratio from 100% to 20%.
// Filter-based DIPRS must keep recall high and latency nearly flat as the
// index outgrows the filtered region.
func runFig12(s Scale, w io.Writer) error {
	m := model.New(s.Model)
	layer := 1
	prefix := s.ContextLen / 2
	ratios := []int{100, 80, 60, 40, 20}
	beta := betaFor(s.Model.HeadDim)

	fmt.Fprintf(w, "Figure 12: filtered DIPRS with a %d-token reused prefix (layer %d, beta=%.1f)\n\n",
		prefix, layer, beta)
	t := &table{header: []string{"stored tokens", "reuse ratio", "recall", "latency"}}

	for _, ratio := range ratios {
		stored := prefix * 100 / ratio
		p, _ := workload.ProfileByName("En.QA")
		inst := workload.Generate(p, s.Seed, stored, 64, s.Model.Vocab)
		cache := m.BuildKV(inst.Doc)

		kv := 0
		queries := core.TrainingQueries(m, inst.Doc, layer, m.QueryHeadsOf(kv), 0.3)
		g := graph.Build(cache.Keys(layer, kv), queries, graph.Config{
			Degree: 16, QueryKNN: 12, EfConstruction: 64, Workers: s.Workers})
		fx := flat.New(cache.Keys(layer, kv), 1)

		var recallSum float64
		var elapsed time.Duration
		trials := s.Trials * 4
		for trial := 0; trial < trials; trial++ {
			qh := m.QueryHeadsOf(kv)[trial%m.GroupSize()]
			// Realistic decode queries: focused on the stored context's
			// question topic (what sessions actually search for), with
			// per-trial step noise.
			q := m.QueryVector(inst.Doc, layer, qh, model.QuerySpec{
				FocusTopics: inst.Question, Step: trial, ContextLen: stored})

			exact, _ := fx.DIPRFiltered(q, beta, prefix)
			start := time.Now()
			res := query.DIPRS(g, q, query.DIPRSConfig{
				Beta:   beta,
				Filter: func(id int32) bool { return int(id) < prefix },
			})
			elapsed += time.Since(start)

			got := make(map[int32]bool, len(res.Critical))
			for _, c := range res.Critical {
				got[c.ID] = true
			}
			hit := 0
			for _, c := range exact {
				if got[c.ID] {
					hit++
				}
			}
			if len(exact) > 0 {
				recallSum += float64(hit) / float64(len(exact))
			} else {
				recallSum++
			}
		}
		t.add(fmt.Sprintf("%d", stored), fmt.Sprintf("%d%%", ratio),
			f3(recallSum/float64(trials)), fmtDur(elapsed/time.Duration(trials)))
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: recall stays high at every reuse ratio; latency grows only ~1.13ms from 40K to 200K stored tokens")
	return nil
}
