package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/query"
)

func TestSaveLoadContextRoundTrip(t *testing.T) {
	db := testDB(t, nil)
	const n = 500
	doc := model.NewFiller(21, n, 32, 32)
	doc.Plant(250, 200, 9, 1)
	ctx, err := db.ImportDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ctx")
	if err := db.SaveContext(ctx, dir); err != nil {
		t.Fatal(err)
	}

	// A second DB (same model) loads the context and serves sessions.
	db2 := testDB(t, nil)
	loaded, err := db2.LoadContext(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != n {
		t.Fatalf("loaded len = %d", loaded.Len())
	}
	// KV must be byte-identical.
	mc := db.Model().Config()
	for l := 0; l < mc.Layers; l++ {
		for h := 0; h < mc.KVHeads; h++ {
			a, b := ctx.Cache().Keys(l, h), loaded.Cache().Keys(l, h)
			for i := 0; i < n; i += 97 {
				for j := range a.Row(i) {
					if a.Row(i)[j] != b.Row(i)[j] {
						t.Fatalf("keys differ at L%dH%d row %d", l, h, i)
					}
				}
			}
			av, bv := ctx.Cache().Values(l, h), loaded.Cache().Values(l, h)
			for j := range av.Row(0) {
				if av.Row(0)[j] != bv.Row(0)[j] {
					t.Fatalf("values differ at L%dH%d", l, h)
				}
			}
		}
	}
	// Graphs must be reusable: a session over the loaded context retrieves
	// through the persisted index.
	sess, reused := db2.CreateSession(loaded.Doc())
	defer sess.Close()
	if reused != n {
		t.Fatalf("reused = %d", reused)
	}
	mdl := db2.Model()
	q := mdl.QueryVector(loaded.Doc(), 1, 0, model.QuerySpec{FocusTopics: []int{200}, ContextLen: n})
	res := sess.Attention(1, 0, q)
	if res.Plan.Query == query.KindDIPR && res.Retrieved == 0 {
		t.Error("loaded context retrieved nothing")
	}
}

func TestLoadContextModelMismatch(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(22, 300, 16, 32)
	ctx, err := db.ImportDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ctx")
	if err := db.SaveContext(ctx, dir); err != nil {
		t.Fatal(err)
	}

	otherCfg := model.Default()
	otherCfg.Layers = 3 // differs from testModel's 2
	otherCfg.HeadDim = 128
	other, err := New(Config{Model: model.New(otherCfg), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.LoadContext(dir); err == nil {
		t.Fatal("model mismatch accepted")
	}
}

func TestLoadContextMissingDir(t *testing.T) {
	db := testDB(t, nil)
	if _, err := db.LoadContext(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLoadContextCorruptManifest(t *testing.T) {
	db := testDB(t, nil)
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644)
	if _, err := db.LoadContext(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestSaveLoadWithoutGQASharing(t *testing.T) {
	noShare := false
	mdl := testModel()
	db, err := New(Config{Model: mdl, ShareGQA: &noShare, Workers: 2,
		LongThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := model.NewFiller(23, 300, 16, 32)
	ctx, err := db.ImportDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.groups != mdl.Config().QHeads {
		t.Fatalf("groups = %d, want one per query head", ctx.groups)
	}
	dir := filepath.Join(t.TempDir(), "ctx")
	if err := db.SaveContext(ctx, dir); err != nil {
		t.Fatal(err)
	}

	db2, err := New(Config{Model: testModel(), ShareGQA: &noShare, Workers: 2, LongThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	loaded, err := db2.LoadContext(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph(db2, 1, 3) == nil {
		t.Error("per-head graph missing after load")
	}
}

func TestShareMismatchRejected(t *testing.T) {
	db := testDB(t, nil) // sharing on
	doc := model.NewFiller(24, 300, 16, 32)
	ctx, _ := db.ImportDoc(doc)
	dir := filepath.Join(t.TempDir(), "ctx")
	if err := db.SaveContext(ctx, dir); err != nil {
		t.Fatal(err)
	}
	noShare := false
	db2, err := New(Config{Model: testModel(), ShareGQA: &noShare, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.LoadContext(dir); err == nil {
		t.Fatal("GQA sharing mismatch accepted")
	}
}
