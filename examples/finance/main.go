// Financial document analysis (§8 use case): a batch of long reports is
// imported, summarization-style questions run against each, and the
// contexts are persisted to disk through the vector file system so a later
// service restart reloads them without recomputing KV or rebuilding
// indexes.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	cfg := model.Default()
	cfg.Layers = 4
	m := model.New(cfg)

	db, err := core.New(core.Config{
		Model:         m,
		Window:        attention.Window{Sinks: 32, Recent: 64},
		LongThreshold: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	dir, err := os.MkdirTemp("", "alaya-finance-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Three "annual reports" with summarization-profile critical sets
	// (many weakly-salient facts spread through the document).
	sum, _ := workload.ProfileByName("En.Sum")
	reports := make([]workload.Instance, 3)
	for i := range reports {
		reports[i] = workload.Generate(sum, uint64(100+i), 6144, 64, cfg.Vocab)
		ctx, err := db.ImportDoc(reports[i].Doc)
		if err != nil {
			log.Fatal(err)
		}
		ctxDir := filepath.Join(dir, fmt.Sprintf("report-%d", i))
		if err := db.SaveContext(ctx, ctxDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report %d: %d tokens imported, indexed, persisted to %s\n",
			i, ctx.Len(), ctxDir)
	}

	// Analyse each report.
	fmt.Println("\nsummarization queries:")
	for i, inst := range reports {
		sess, _ := db.CreateSession(inst.Doc)
		start := time.Now()
		var outputs []model.HeadOutput
		for _, hr := range m.RetrievalHeads() {
			q := m.QueryVector(inst.Doc, hr.Layer, hr.QHead, model.QuerySpec{
				FocusTopics: inst.Question, ContextLen: inst.Doc.Len()})
			res := sess.Attention(hr.Layer, hr.QHead, q)
			outputs = append(outputs, model.HeadOutput{Layer: hr.Layer, QHead: hr.QHead, Output: res.Output})
		}
		answer := m.DecodeAnswer(outputs)
		st := sess.Stats()
		fmt.Printf("  report %d: key finding payload %d (want %d), %d tokens retrieved, %v\n",
			i, answer, inst.Answer, st.Retrieved, time.Since(start).Round(time.Microsecond))
		sess.Close()
	}

	// Simulate a service restart: a fresh DB reloads persisted contexts.
	fmt.Println("\nrestarting service: loading persisted contexts...")
	db2, err := core.New(core.Config{
		Model:         m,
		Window:        attention.Window{Sinks: 32, Recent: 64},
		LongThreshold: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	start := time.Now()
	for i := range reports {
		if _, err := db2.LoadContext(filepath.Join(dir, fmt.Sprintf("report-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reloaded %d contexts (KV + graph indexes) in %v — no KV recompute, no index rebuild\n",
		db2.NumContexts(), time.Since(start).Round(time.Millisecond))

	// Prove the reloaded contexts still serve queries.
	inst := reports[1]
	sess, reused := db2.CreateSession(inst.Doc)
	defer sess.Close()
	var outputs []model.HeadOutput
	for _, hr := range m.RetrievalHeads() {
		q := m.QueryVector(inst.Doc, hr.Layer, hr.QHead, model.QuerySpec{
			FocusTopics: inst.Question, ContextLen: inst.Doc.Len()})
		res := sess.Attention(hr.Layer, hr.QHead, q)
		outputs = append(outputs, model.HeadOutput{Layer: hr.Layer, QHead: hr.QHead, Output: res.Output})
	}
	fmt.Printf("after restart: report 1 reused %d tokens, answer %d (want %d)\n",
		reused, m.DecodeAnswer(outputs), inst.Answer)
}
