package bench

import (
	"fmt"
	"io"

	"repro/internal/attention"
	"repro/internal/index/flat"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/vec"
	"repro/internal/workload"
)

func init() {
	register("fig5", "critical tokens per layer-head at 90% recovery vs DIPR (Figure 5)", runFig5)
}

// runFig5 reproduces Figure 5: the number of tokens each head needs to
// reach a 90% recovery ratio varies by orders of magnitude across heads,
// and a single-β DIPR query tracks that dynamic requirement.
func runFig5(s Scale, w io.Writer) error {
	m := model.New(s.Model)
	p, err := workload.ProfileByName("Retr.KV")
	if err != nil {
		return err
	}
	inst := workload.Generate(p, s.Seed, s.ContextLen, 64, s.Model.Vocab)
	cache := m.BuildKV(inst.Doc)
	beta := query.Beta(0.5, s.Model.HeadDim)

	fmt.Fprintf(w, "Figure 5: tokens needed per head (context %d tokens, DIPR beta=%.1f)\n\n",
		s.ContextLen, beta)
	t := &table{header: []string{"layer", "head", "sharpness", "tokens@50%", "tokens@90%", "DIPR tokens"}}

	minTok, maxTok := s.ContextLen, 0
	for l := 0; l < s.Model.Layers; l++ {
		for h := 0; h < s.Model.QHeads; h += 2 { // sample alternate heads like the paper's 5/layer
			kv := m.KVGroup(h)
			q := m.QueryVector(inst.Doc, l, h, model.QuerySpec{
				FocusTopics: inst.Question, ContextLen: s.ContextLen})
			weights := attention.Weights(q, cache.Keys(l, kv))
			// The substrate's flat attention tail inflates the 90% target
			// uniformly (see EXPERIMENTS.md); the 50% column shows the
			// per-head concentration spread the paper's figure is about.
			need50 := attention.TokensForRecovery(weights, 0.5)
			need90 := attention.TokensForRecovery(weights, 0.9)

			fx := flat.New(cache.Keys(l, kv), s.Workers)
			critical, _ := fx.DIPR(q, beta)

			t.add(fmt.Sprintf("%d", l), fmt.Sprintf("%d", h),
				f2(m.Sharpness(l, h)),
				fmt.Sprintf("%d", need50), fmt.Sprintf("%d", need90),
				fmt.Sprintf("%d", len(critical)))
			if need50 < minTok {
				minTok = need50
			}
			if need50 > maxTok {
				maxTok = need50
			}
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nspread: min %d, max %d tokens to reach 50%% recovery (%.0fx variation across heads)\n",
		minTok, maxTok, float64(maxTok)/float64(max(1, minTok)))
	fmt.Fprintf(w, "paper: 53 to 43K tokens across heads of Llama-3-8B-262k; DIPR with one beta tracks the per-head need\n")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// headWeights is shared by fig5-style analyses in other experiments.
func headWeights(m *model.Model, doc *model.Document, cacheKeys *vec.Matrix, layer, qHead int, question []int, n int) []float32 {
	q := m.QueryVector(doc, layer, qHead, model.QuerySpec{FocusTopics: question, ContextLen: n})
	return attention.Weights(q, cacheKeys)
}
