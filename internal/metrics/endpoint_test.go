package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestEndpointCountersObserve(t *testing.T) {
	var c EndpointCounters
	c.Observe(EPStep, false, 2*time.Millisecond)
	c.Observe(EPStep, true, 4*time.Millisecond)
	c.Observe(EPStats, false, time.Millisecond)

	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d endpoints, want 2: %+v", len(snap), snap)
	}
	step := snap[0]
	if step.Endpoint != "step" || step.Requests != 2 || step.Errors != 1 {
		t.Fatalf("step counters = %+v", step)
	}
	if step.MeanMillis < 2.9 || step.MeanMillis > 3.1 {
		t.Fatalf("step mean = %v ms, want ~3", step.MeanMillis)
	}
	if step.MaxMillis < 3.9 || step.MaxMillis > 4.1 {
		t.Fatalf("step max = %v ms, want ~4", step.MaxMillis)
	}
	if snap[1].Endpoint != "stats" || snap[1].Requests != 1 {
		t.Fatalf("stats counters = %+v", snap[1])
	}
	if got := c.Requests(EPStep); got != 2 {
		t.Fatalf("Requests(EPStep) = %d", got)
	}

	// Out-of-range endpoints are ignored, not panics.
	c.Observe(Endpoint(-1), false, time.Millisecond)
	c.Observe(numEndpoints, false, time.Millisecond)
	if got := c.Requests(Endpoint(-1)); got != 0 {
		t.Fatalf("Requests(-1) = %d", got)
	}
}

func TestEndpointNames(t *testing.T) {
	for _, e := range Endpoints() {
		if e.String() == "" || e.String() == "unknown" {
			t.Fatalf("endpoint %d has no name", e)
		}
	}
	if Endpoint(-1).String() != "unknown" {
		t.Fatalf("out-of-range name = %q", Endpoint(-1).String())
	}
}

// TestEndpointCountersConcurrent hammers Observe from many goroutines; run
// under -race this is the lock-freedom guarantee.
func TestEndpointCountersConcurrent(t *testing.T) {
	var c EndpointCounters
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Observe(EPStep, i%7 == 0, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Requests(EPStep); got != workers*per {
		t.Fatalf("requests = %d, want %d", got, workers*per)
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].MaxMillis <= 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
