package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/attention"
	"repro/internal/devmem"
	"repro/internal/index"
	"repro/internal/index/coarse"
	"repro/internal/index/flat"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/query"
)

// decodeState bundles every reusable buffer one attention computation
// needs: the partial-attention scratch arenas (prefix and tail, plus one
// per shard when a sharded graph plan splits the prefix), the DIPRS search
// states (monolithic and sharded), the flat-scan scratch, the dedup
// bitset, and the index buffers the plan executor fills. States are drawn
// from a sync.Pool, so a steady-state decode loop — serial or fanned
// across the worker pool — reuses the same handful of states token after
// token and allocates nothing. A state serves one attention call at a
// time.
type decodeState struct {
	scPrefix  attention.Scratch
	scTail    attention.Scratch
	parts     []attention.Partial // grown to 2, or nShards+1 on sharded graph plans
	search    query.SearchState
	flat      flat.Scratch
	seen      index.VisitSet
	winPrefix []int
	prefixIdx []int
	ids       []int
	segs      []attention.KVSpan

	// Sharded-context buffers: the per-shard DIPRS fan-out state, the
	// assembled shard graph/offset lists, the per-shard prefix id
	// partition, and one attention scratch per shard partial.
	shardSearch query.ShardedState
	shardGs     []query.Graph
	shardOffs   []int
	shardIdx    [][]int
	shardSc     []attention.Scratch
}

// growParts returns ds.parts sized to n, retaining backing storage.
func (ds *decodeState) growParts(n int) []attention.Partial {
	if cap(ds.parts) < n {
		ds.parts = make([]attention.Partial, n)
	}
	ds.parts = ds.parts[:n]
	return ds.parts
}

var decodeStatePool = sync.Pool{New: func() interface{} { return new(decodeState) }}

func getDecodeState() *decodeState   { return decodeStatePool.Get().(*decodeState) }
func putDecodeState(ds *decodeState) { decodeStatePool.Put(ds) }

// Untyped forms passed to pool.ForEachScratch; package-level function
// values, so handing them over allocates nothing.
func getDecodeStateAny() interface{}  { return decodeStatePool.Get() }
func putDecodeStateAny(v interface{}) { decodeStatePool.Put(v) }

// Session connects a (possibly reused) stored context with a running
// inference request (§5). A session's context is split at reuseLen: tokens
// below it live in the reused stored context (searchable through its
// indexes), tokens at or above it live in the session-local tail cache —
// the late-materialization zone (§7.2): they are attended through the
// window, not indexed, until DB.Store materializes them.
//
// When the reused context is a copy-on-write chain, the split refines
// further: rows [0, indexedLen) live in the chain's root and are
// searchable through its indexes; rows [indexedLen, reuseLen) are the
// chain links' divergent tails (mids), attended exactly — they were the
// storing sessions' own tails, and they stay in that role here; rows from
// reuseLen on are this session's tail. The mids and the tail score as one
// chained partial that is bitwise-identical to a single contiguous tail
// cache (attention.OverSegmentsScratch), which is what makes a session
// over a stored copy-on-write context reproduce the storing session's
// continuation exactly.
type Session struct {
	db           *DB
	base         *Context // reused stored context (attach point); nil when cold
	root         *Context // base's chain root; == base without copy-on-write
	baseReloaded bool     // base was reloaded from the spill tier
	basePinned   bool     // base chain holds this session's eviction pin
	reuseLen     int      // tokens reused from base
	indexedLen   int      // leading tokens searchable through root's indexes
	mids         []kvSeg  // chain rows [indexedLen, reuseLen), root-first
	span         bool     // range-shard session: attends only [reuseLen, spanHi)
	spanHi       int      // exclusive span end; 0 = open (the tail-owner shard)
	doc          *model.Document
	tail         *kvcache.Cache

	mu       sync.Mutex
	coarseIx map[int]*coarse.Index // lazy, keyed by layer*kvHeads+kvHead
	coarseH  map[int]int           // devmem handles for coarse block cache
	windowH  int                   // devmem handle for the device window
	closed   bool

	stats Stats
}

// kvSeg is one chain link's contribution to a session's attended rows:
// local rows [lo, hi) of cache.
type kvSeg struct {
	cache  *kvcache.Cache
	lo, hi int
}

// Stats counts a session's query processing activity.
type Stats struct {
	// Plans counts executed plans by their String() form.
	Plans map[string]int
	// Retrieved is the total number of critical tokens retrieved.
	Retrieved int64
	// Explored is the total number of index nodes scored.
	Explored int64
	// Queries is the number of Attention calls served.
	Queries int64
	// FlatFallbacks counts fine-plan queries served by a flat scan because
	// no graph index covered the data.
	FlatFallbacks int64
	// CoarseFallbacks counts coarse-plan queries downgraded because the
	// device could not hold the block cache.
	CoarseFallbacks int64
	// Reranked is the total band candidates quantized DIPR retrievals
	// rescored in fp32 (0 without Config.QuantKeys).
	Reranked int64
}

func newSession(db *DB, base *Context, reuseLen int, doc *model.Document) *Session {
	// The session owns its document: generation appends tokens to it, and
	// mutating the caller's prompt (or a stored context's document) through
	// the session would corrupt prefix matching for later sessions.
	owned := &model.Document{Seed: doc.Seed, Tokens: append([]model.Token(nil), doc.Tokens...)}
	s := &Session{
		db:       db,
		base:     base,
		reuseLen: reuseLen,
		doc:      owned,
		tail:     kvcache.New(db.cfg.Model.Config().Layers, db.cfg.Model.Config().KVHeads, db.cfg.Model.Config().HeadDim),
		coarseIx: make(map[int]*coarse.Index),
		coarseH:  make(map[int]int),
		windowH:  -1,
		stats:    Stats{Plans: make(map[string]int)},
	}
	s.resolveChain()
	mc := db.cfg.Model.Config()
	winBytes := int64(db.cfg.Window.Sinks+db.cfg.Window.Recent) * int64(mc.Layers) * int64(mc.KVHeads) * int64(mc.HeadDim) * 4 * 2
	if h, err := db.cfg.Device.Alloc(winBytes, devmem.Window); err == nil {
		s.windowH = h
	}
	return s
}

// resolveChain precomputes the session's view of its base chain: the
// root context (whose indexes serve retrieval), how many leading tokens
// those indexes cover, and the middle segments — each chain link's owned
// rows that fall inside the reused prefix, ordered root-first so the
// chained tail partial visits rows in logical order. Contexts are
// immutable, so this is fixed for the session's lifetime.
func (s *Session) resolveChain() {
	if s.base == nil {
		s.indexedLen = 0
		return
	}
	var chain []*Context // attach point first, root last
	for c := s.base; c != nil; c = c.base {
		chain = append(chain, c)
	}
	s.root = chain[len(chain)-1]
	rootCover := s.root.Len()
	if len(chain) > 1 {
		rootCover = chain[len(chain)-2].baseLen
	}
	s.indexedLen = s.reuseLen
	if s.indexedLen > rootCover {
		s.indexedLen = rootCover
	}
	for i := len(chain) - 2; i >= 0; i-- {
		c := chain[i]
		upper := s.reuseLen
		if i > 0 {
			upper = chain[i-1].baseLen
		}
		if upper > c.Len() {
			upper = c.Len()
		}
		if upper > c.baseLen {
			s.mids = append(s.mids, kvSeg{cache: c.cache, lo: 0, hi: upper - c.baseLen})
		}
	}
}

// Doc returns the session's document (reused prefix plus appended tokens).
func (s *Session) Doc() *model.Document { return s.doc }

// ReuseLen returns the number of tokens reused from a stored context.
func (s *Session) ReuseLen() int { return s.reuseLen }

// BaseFromSpill reports whether the session's reused context was reloaded
// from the disk spill tier rather than found resident in memory.
func (s *Session) BaseFromSpill() bool { return s.baseReloaded }

// PartialReuse reports whether the session's indexed prefix is a strict
// prefix of the chain root's indexed rows, which forces attribute
// filtering during retrieval (§7.1). Chain mids are attended exactly, so
// only the root boundary matters here.
func (s *Session) PartialReuse() bool {
	return s.root != nil && s.indexedLen < s.root.Len()
}

// ContextLen returns the session's current context length for a layer:
// reused prefix plus ingested tail tokens.
func (s *Session) ContextLen(layer int) int {
	return s.reuseLen + s.tail.SeqLen(layer)
}

// Stats returns a copy of the session's counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.stats
	cp.Plans = make(map[string]int, len(s.stats.Plans))
	for k, v := range s.stats.Plans {
		cp.Plans[k] = v
	}
	return cp
}

// Update ingests one token's key and value vectors for one layer across all
// kv heads — the Session.update API of Table 2, the counterpart of
// HuggingFace's DynamicCache.update. ks and vs are indexed by kv head.
func (s *Session) Update(layer int, ks, vs [][]float32) {
	s.tail.AppendAll(layer, ks, vs)
}

// PrefillRemaining generates and ingests KV for every document token not
// covered by the reused prefix, through the model substrate. Layers are
// filled in parallel through the DB's pool — each layer appends to its own
// cache matrices, so the sweep is a pure fan-out. It returns the number of
// tokens ingested per layer.
func (s *Session) PrefillRemaining() int {
	mc := s.db.cfg.Model.Config()
	end := s.spanEnd()
	fed := end - s.reuseLen - s.tail.SeqLen(0)
	if fed < 0 {
		fed = 0
	}
	s.db.cfg.Pool.ForEach(mc.Layers, func(l int) {
		start := s.reuseLen + s.tail.SeqLen(l)
		for pos := start; pos < end; pos++ {
			s.ingest(l, pos)
		}
	})
	return fed
}

// spanEnd returns the exclusive end of the rows this session ingests: the
// whole document, capped at spanHi for a fixed range-shard session.
func (s *Session) spanEnd() int {
	if s.span && s.spanHi > 0 && s.spanHi < s.doc.Len() {
		return s.spanHi
	}
	return s.doc.Len()
}

// Span reports whether this is a range-shard session (created by
// CreateSpanSession); FixedSpan additionally reports a bounded shard —
// one that must never ingest generated tokens (the open tail-owner shard
// does; it is the only shard a routed AppendToken lands on).
func (s *Session) Span() bool      { return s.span }
func (s *Session) FixedSpan() bool { return s.span && s.spanHi > 0 }

// AppendToken extends the session document with a newly generated token and
// ingests its KV across all layers, fanned out layer-per-task. Fixed-span
// shard sessions never ingest generated tokens (the serving layer routes
// them attend-only); feeding one is a caller bug, not a recoverable state.
func (s *Session) AppendToken(t model.Token) {
	if s.FixedSpan() {
		panic("core: AppendToken on a fixed-span shard session")
	}
	pos := s.doc.Append(t)
	mc := s.db.cfg.Model.Config()
	s.db.cfg.Pool.ForEach(mc.Layers, func(l int) {
		s.ingest(l, pos)
	})
}

// ingest generates and appends one token's KV for one layer.
func (s *Session) ingest(layer, pos int) {
	m := s.db.cfg.Model
	mc := m.Config()
	ks := make([][]float32, mc.KVHeads)
	vs := make([][]float32, mc.KVHeads)
	for h := 0; h < mc.KVHeads; h++ {
		ks[h] = m.KeyVector(s.doc, pos, layer, h)
		vs[h] = m.ValueVector(s.doc, pos, layer, h)
	}
	s.Update(layer, ks, vs)
}

// AttentionResult carries one head's attention output plus the execution
// facts experiments record.
type AttentionResult struct {
	Output       []float32
	Plan         query.Plan
	Retrieved    int   // critical tokens retrieved (excluding window/tail)
	RetrievedIDs []int // the retrieved positions themselves
	Explored     int   // index nodes scored
	Attended     int   // total tokens that participated in the output
	// LSE is the combined log-sum-exp over every merged partial — the
	// weight a second-level merge (a cluster router folding per-node
	// partials) needs to treat this whole result as one Partial. −Inf
	// when nothing attended.
	LSE float64
}

// Attention computes the attention output of q for (layer, qHead) over the
// session's whole context — the Session.attention API of Table 2. The
// execution plan is chosen by the rule-based optimizer (Figure 8). The
// result's slices are freshly allocated and safe to retain; decode loops
// that want the allocation-free path use AttentionInto.
func (s *Session) Attention(layer, qHead int, q []float32) AttentionResult {
	var res AttentionResult
	s.AttentionInto(layer, qHead, q, &res)
	return res
}

// AttentionInto is Attention writing into *res, reusing res.Output and
// res.RetrievedIDs storage across calls: a decode loop that keeps one
// result per head sees zero allocations per token once buffers are warm.
// Previous contents of res are overwritten; callers that retain a result
// beyond the next AttentionInto on the same res must copy it.
func (s *Session) AttentionInto(layer, qHead int, q []float32, res *AttentionResult) {
	ds := getDecodeState()
	s.attentionInto(ds, layer, qHead, q, res)
	putDecodeState(ds)
}

// AttentionAll computes attention for every query head of a layer, fanning
// the heads across the DB's worker pool — each head's retrieval and partial
// attention are independent, so this is the paper's multi-head overlap. qs
// is indexed by query head. On an unconstrained device the result is
// bitwise-identical to calling Attention per head serially (each head's
// computation is deterministic and shares no mutable state beyond
// counters); under a tight device budget, plan selection samples the
// racing free-byte count, so which heads win a coarse block cache may vary
// with scheduling, exactly as it would across concurrently served
// requests. Result slices are freshly allocated; decode loops use
// AttentionAllInto.
func (s *Session) AttentionAll(layer int, qs [][]float32) []AttentionResult {
	out := make([]AttentionResult, len(qs))
	s.AttentionAllInto(layer, qs, out)
	return out
}

// AttentionAllInto is AttentionAll writing into out (len(out) must equal
// len(qs)), reusing each entry's buffers as AttentionInto does. Heads fan
// across the DB's worker pool with one pooled decode state per worker; on
// the Serial pool the whole fan-out runs inline on one state with no
// allocation at all.
func (s *Session) AttentionAllInto(layer int, qs [][]float32, out []AttentionResult) {
	if len(out) != len(qs) {
		panic(fmt.Sprintf("core: AttentionAllInto got %d result slots for %d heads", len(out), len(qs)))
	}
	p := s.db.cfg.Pool
	if p.Size() == 0 || len(qs) == 1 {
		ds := getDecodeState()
		for h := range qs {
			s.attentionInto(ds, layer, h, qs[h], &out[h])
		}
		putDecodeState(ds)
		return
	}
	p.ForEachScratch(len(qs), getDecodeStateAny, putDecodeStateAny,
		func(sc interface{}, h int) {
			s.attentionInto(sc.(*decodeState), layer, h, qs[h], &out[h])
		})
}

// AttentionAllLegacy computes AttentionAll the way the pre-arena code did:
// every working buffer — scratch arenas, search state, dedup set, result
// slices — is freshly allocated per head instead of drawn from the decode
// state pool. It is the baseline the alloc benchmarks compare the arena
// path against; decode loops use AttentionAllInto.
func (s *Session) AttentionAllLegacy(layer int, qs [][]float32) []AttentionResult {
	out := make([]AttentionResult, len(qs))
	for h := range qs {
		s.attentionInto(new(decodeState), layer, h, qs[h], &out[h])
	}
	return out
}

// attentionInto plans and executes one head's attention through ds's
// arenas, writing the result into *res.
func (s *Session) attentionInto(ds *decodeState, layer, qHead int, q []float32, res *AttentionResult) {
	n := s.ContextLen(layer)
	plan := query.Optimize(query.Request{
		ContextLen:    n,
		LongThreshold: s.db.cfg.LongThreshold,
		PartialReuse:  s.PartialReuse(),
		DeviceFree:    s.deviceFree(),
		CoarseNeed:    s.coarseNeed(),
		Layer:         layer,
	})
	kv := s.db.cfg.Model.KVGroup(qHead)
	s.windowPrefixInto(ds, n)

	var retrieved []int
	explored := 0
	reranked := 0
	switch plan.Query {
	case query.KindFull:
		// Everything participates; no retrieval.
	case query.KindTopK:
		if idx, ok := s.coarseIndex(layer, kv); ok {
			retrieved = idx.SelectTokens(q, s.db.cfg.CoarseBudget)
			explored = idx.Blocks()
		} else {
			// Device could not hold the coarse working set after all:
			// downgrade to the fine path.
			s.mu.Lock()
			s.stats.CoarseFallbacks++
			s.mu.Unlock()
			plan.Query = query.KindDIPR
			plan.Index = query.IndexFine
		}
	}
	if plan.Query == query.KindDIPR {
		retrieved, explored, reranked = s.executeDIPR(ds, plan, layer, qHead, kv, q)
		if s.root != nil && s.indexedLen > 0 {
			s.db.quant.RecordSearch(s.root.cache.QuantEnabled(), reranked)
		}
	}

	attended := s.sparseOutputInto(ds, plan, layer, kv, q, res, retrieved)
	res.Plan = plan
	res.Retrieved = len(retrieved)
	res.RetrievedIDs = append(res.RetrievedIDs[:0], retrieved...)
	res.Explored = explored
	res.Attended = attended

	s.mu.Lock()
	s.stats.Plans[plan.String()]++
	s.stats.Retrieved += int64(res.Retrieved)
	s.stats.Explored += int64(res.Explored)
	s.stats.Reranked += int64(reranked)
	s.stats.Queries++
	s.mu.Unlock()
}

func (s *Session) deviceFree() int64 {
	free := s.db.cfg.Device.FreeBytes()
	if free < 0 {
		return math.MaxInt64
	}
	return free
}

// coarseNeed estimates the device bytes the coarse path would require: the
// block representatives plus a resident working set of one retrieval budget
// of KV per layer.
func (s *Session) coarseNeed() int64 {
	if s.root == nil {
		return 0
	}
	mc := s.db.cfg.Model.Config()
	perTokenBytes := int64(mc.HeadDim) * 4 * 2 * int64(mc.KVHeads)
	budget := int64(s.db.cfg.CoarseBudget) * perTokenBytes * int64(mc.Layers)
	reps := s.root.cache.Bytes() / 8 // min/max/mean summaries at block granularity
	return budget + reps
}

// executeDIPR retrieves the β-critical set from the indexed prefix — the
// chain root's rows below indexedLen — via the planned index, through ds's
// search arenas. The attended set is bounded to an eighth of the indexed
// prefix (min 64): diffuse heads' β-bands can span much of the context,
// and like InfLLM's block budget, production retrieval is bounded. The
// returned ids alias ds. The final result reports how many band
// candidates were reranked in fp32 (0 on the fp32 plane).
func (s *Session) executeDIPR(ds *decodeState, plan query.Plan, layer, qHead, kv int, q []float32) ([]int, int, int) {
	if s.root == nil || s.indexedLen == 0 {
		return nil, 0, 0
	}
	beta := s.db.cfg.Beta
	limit := s.indexedLen
	resultCap := limit / 8
	if resultCap < 64 {
		resultCap = 64
	}

	if plan.Index == query.IndexFlat {
		ids, reranked := s.flatDIPR(ds, layer, kv, q, beta, limit, resultCap)
		return ids, limit, reranked
	}

	if s.root.Sharded() {
		if ids, explored, reranked, ok := s.shardedGraphDIPR(ds, plan, layer, qHead, kv, q, beta, limit, resultCap); ok {
			return ids, explored, reranked
		}
		// A shard graph is missing (partial reload): downgrade to the scan.
		s.mu.Lock()
		s.stats.FlatFallbacks++
		s.mu.Unlock()
		ids, reranked := s.flatDIPR(ds, layer, kv, q, beta, limit, resultCap)
		return ids, limit, reranked
	}

	g := s.root.Graph(s.db, layer, qHead)
	if g == nil {
		s.mu.Lock()
		s.stats.FlatFallbacks++
		s.mu.Unlock()
		ids, reranked := s.flatDIPR(ds, layer, kv, q, beta, limit, resultCap)
		return ids, limit, reranked
	}

	cfg := query.DIPRSConfig{Beta: beta, MaxResults: resultCap, MaxExplore: 4 * resultCap}
	// Window-cache enhancement (§7.1): seed the running maximum with the
	// best inner product inside the device window's prefix part. The seed
	// is exact (the snapped fp32 plane); a quantized traversal lowers it by
	// its error bound internally.
	if max, ok := query.WindowMax(q, s.root.cache.Keys(layer, kv), ds.winPrefix); ok {
		cfg.InitialMax = max
		cfg.HasInitialMax = true
	}
	if plan.Filtered {
		// The predicate closure is the one allocation left on the
		// partial-reuse path; full-reuse decode stays allocation-free.
		lim := int32(limit)
		cfg.Filter = func(id int32) bool { return id < lim }
	}
	r := query.DIPRSWith(&ds.search, g, q, cfg)
	ids := ds.ids[:0]
	for _, c := range r.Critical {
		if int(c.ID) < limit { // unfiltered plans may index beyond the prefix
			ids = append(ids, int(c.ID))
		}
	}
	ds.ids = ids
	return ids, r.Explored, r.Reranked
}

// shardedGraphDIPR fans the DIPRS probe across the root context's range
// shards and merges the per-shard β-bands at the global maximum
// (query.DIPRSShards). Shards entirely past the reused prefix are skipped
// — the attribute filter would reject everything they return. Returns
// ok=false when a needed shard graph is missing (a partially reloaded
// context); the caller downgrades to the flat scan.
func (s *Session) shardedGraphDIPR(ds *decodeState, plan query.Plan, layer, qHead, kv int, q []float32, beta float32, limit, resultCap int) ([]int, int, int, bool) {
	graphs := s.root.ShardGraphs(s.db, layer, qHead)
	if graphs == nil {
		return nil, 0, 0, false
	}
	spans := s.root.ShardSpans()
	gs := ds.shardGs[:0]
	offs := ds.shardOffs[:0]
	for i, g := range graphs {
		if spans[i].Lo >= limit {
			continue
		}
		if g == nil {
			return nil, 0, 0, false
		}
		gs = append(gs, g)
		offs = append(offs, spans[i].Lo)
	}
	ds.shardGs, ds.shardOffs = gs, offs
	cfg := query.DIPRSConfig{Beta: beta, MaxResults: resultCap, MaxExplore: 4 * resultCap}
	// The window seed is a lower bound on the *global* maximum, so it is a
	// sound InitialMax for every shard — it only prunes harder; the merged
	// band is re-filtered at the true global maximum regardless.
	if max, ok := query.WindowMax(q, s.root.cache.Keys(layer, kv), ds.winPrefix); ok {
		cfg.InitialMax = max
		cfg.HasInitialMax = true
	}
	if plan.Filtered {
		lim := int32(limit)
		cfg.Filter = func(id int32) bool { return id < lim }
	}
	r := query.DIPRSShards(&ds.shardSearch, s.db.cfg.Pool, gs, offs, q, cfg)
	s.db.ctxpar.RecordProbe(len(gs))
	ids := ds.ids[:0]
	for _, c := range r.Critical {
		if int(c.ID) < limit { // unfiltered plans may index beyond the prefix
			ids = append(ids, int(c.ID))
		}
	}
	ds.ids = ids
	return ids, r.Explored, r.Reranked, true
}

// flatDIPR runs the exact band scan over the reused prefix through ds's
// flat scratch — on the SQ8 plane with an fp32 rerank when the stored
// context carries one, and with the score fill fanned across the root's
// range shards when it has them (bitwise-identical to the unsharded scan;
// see flat.DIPRShardedScratch). The returned ids alias ds.
func (s *Session) flatDIPR(ds *decodeState, layer, kv int, q []float32, beta float32, limit, resultCap int) ([]int, int) {
	fx := flat.MakeQuant(s.root.cache.Keys(layer, kv), s.root.cache.QuantKeys(layer, kv), s.db.cfg.Workers)
	var cands []index.Candidate
	if spans := s.root.ShardSpans(); len(spans) > 1 {
		cands, _ = fx.DIPRShardedScratch(&ds.flat, s.db.cfg.Pool, spans, q, beta, limit)
		s.db.ctxpar.RecordProbe(len(spans))
	} else {
		cands, _ = fx.DIPRFilteredScratch(&ds.flat, q, beta, limit)
	}
	if len(cands) > resultCap {
		cands = cands[:resultCap] // best-first: keep the top of the band
	}
	ids := ds.ids[:0]
	for _, c := range cands {
		ids = append(ids, int(c.ID))
	}
	ds.ids = ids
	return ids, ds.flat.Reranked
}

// windowPrefixInto collects into ds.winPrefix the device-window positions
// that fall inside the indexed prefix for a context of n tokens. Window
// positions past it need no bookkeeping: the chained tail partial covers
// every chain-mid and tail token exactly.
func (s *Session) windowPrefixInto(ds *decodeState, n int) {
	ds.winPrefix = ds.winPrefix[:0]
	indexedLen := s.indexedLen
	s.db.cfg.Window.VisitIndices(n, func(i int) {
		if i < indexedLen {
			ds.winPrefix = append(ds.winPrefix, i)
		}
	})
}

// sparseOutputInto merges partial attention over (i) the retrieved and
// windowed positions of the reused prefix and (ii) the session tail, each
// computed where the data resides (§7.2 data-centric attention), into
// res.Output. On a spawning pool the two sides overlap through pool.Run —
// the prefix partial on the host, the tail next to the device window, each
// in its own arena (scPrefix/scTail). On the Serial pool they run
// back-to-back on this goroutine with no closure constructed, keeping the
// measured decode step allocation-free once warm; there, decode
// parallelism comes from the per-head fan-out in AttentionAllInto. It
// returns the attended token count.
func (s *Session) sparseOutputInto(ds *decodeState, plan query.Plan, layer, kv int, q []float32, res *AttentionResult, retrieved []int) int {
	prefixIdx := ds.prefixIdx[:0]
	if plan.Query == query.KindFull {
		for i := 0; i < s.indexedLen; i++ {
			prefixIdx = append(prefixIdx, i)
		}
	} else {
		// Window positions first, then retrieved positions not already in
		// the window: the dedup set is an epoch-cleared bitset over the
		// prefix, not a per-call map.
		ds.seen.Reset(s.indexedLen)
		for _, i := range ds.winPrefix {
			ds.seen.Add(i)
			prefixIdx = append(prefixIdx, i)
		}
		for _, i := range retrieved {
			if ds.seen.Visit(i) {
				prefixIdx = append(prefixIdx, i)
			}
		}
	}
	ds.prefixIdx = prefixIdx
	tailLen := s.tail.SeqLen(layer)

	// The tail side is a chain: the base links' divergent rows inside the
	// reused prefix (mids, root-first), then the session's own tail —
	// bitwise-identical to one contiguous tail cache holding the same rows.
	segs := ds.segs[:0]
	segRows := 0
	for _, m := range s.mids {
		segs = append(segs, attention.KVSpan{K: m.cache.Keys(layer, kv), V: m.cache.Values(layer, kv), Lo: m.lo, Hi: m.hi})
		segRows += m.hi - m.lo
	}
	segs = append(segs, attention.KVSpan{K: s.tail.Keys(layer, kv), V: s.tail.Values(layer, kv), Lo: 0, Hi: tailLen})
	segRows += tailLen
	ds.segs = segs

	if K := s.shardPartialCount(plan, prefixIdx); K > 1 {
		// Sharded graph plan: one prefix partial per range shard plus the
		// tail, folded through the N-way log-sum-exp merge.
		s.shardPrefixPartials(ds, ds.growParts(K+1), layer, kv, q, prefixIdx, segs)
	} else {
		parts := ds.growParts(2)
		if p := s.db.cfg.Pool; p.Size() > 0 && s.root != nil && len(prefixIdx) > 0 {
			p.Run(
				func() {
					parts[0] = s.prefixPartial(ds, layer, kv, q, prefixIdx)
				},
				func() {
					parts[1] = attention.OverSegmentsScratch(&ds.scTail, q, segs)
				},
			)
		} else {
			if s.root != nil && len(prefixIdx) > 0 {
				parts[0] = s.prefixPartial(ds, layer, kv, q, prefixIdx)
			} else {
				parts[0] = attention.Partial{LSE: math.Inf(-1)}
			}
			parts[1] = attention.OverSegmentsScratch(&ds.scTail, q, segs)
		}
	}

	if cap(res.Output) < len(q) {
		res.Output = make([]float32, len(q))
	} else {
		res.Output = res.Output[:len(q)]
	}
	attention.MergeInto(res.Output, ds.parts)
	res.LSE = attention.CombinedLSE(ds.parts)
	return len(prefixIdx) + segRows
}

// shardPartialCount decides the prefix partial fan-out of one attention
// call: the root's shard count on a sharded fine-graph DIPR plan, 1
// otherwise. Flat and full plans keep the classic 2-partial shape even on
// sharded contexts — their score fill already parallelizes inside the scan,
// and the 2-way fold is the bitwise-pinned one.
func (s *Session) shardPartialCount(plan query.Plan, prefixIdx []int) int {
	if s.root == nil || !s.root.Sharded() || len(prefixIdx) == 0 {
		return 1
	}
	if plan.Query != query.KindDIPR || plan.Index != query.IndexFine {
		return 1
	}
	return len(s.root.ShardSpans())
}

// shardPrefixPartials computes one prefix partial per range shard plus the
// tail partial into parts (len K+1), fanned across the pool with one
// scratch arena per shard. The prefix ids partition by shard span — spans
// are sorted and contiguous, so a short forward probe places each id — and
// every partial reads the chain root's cache with global ids, so no
// per-shard KV view is needed. Empty shards contribute a −Inf partial the
// merge skips.
func (s *Session) shardPrefixPartials(ds *decodeState, parts []attention.Partial, layer, kv int, q []float32, prefixIdx []int, segs []attention.KVSpan) {
	K := len(parts) - 1
	spans := s.root.ShardSpans()
	if cap(ds.shardIdx) < K {
		grown := make([][]int, K)
		copy(grown, ds.shardIdx)
		ds.shardIdx = grown
	}
	ds.shardIdx = ds.shardIdx[:K]
	for i := range ds.shardIdx {
		ds.shardIdx[i] = ds.shardIdx[i][:0]
	}
	for _, id := range prefixIdx {
		for sh := range spans {
			if id < spans[sh].Hi {
				ds.shardIdx[sh] = append(ds.shardIdx[sh], id)
				break
			}
		}
	}
	if cap(ds.shardSc) < K {
		grown := make([]attention.Scratch, K)
		copy(grown, ds.shardSc)
		ds.shardSc = grown
	}
	ds.shardSc = ds.shardSc[:K]
	s.db.cfg.Pool.ForEach(K+1, func(i int) {
		if i == K {
			parts[K] = attention.OverSegmentsScratch(&ds.scTail, q, segs)
			return
		}
		parts[i] = s.prefixPartialIn(&ds.shardSc[i], layer, kv, q, ds.shardIdx[i])
	})
}

// prefixPartial computes the host-side partial over the indexed prefix —
// the data-centric engine's host half (§7.2), reading the chain root's
// cache. With the SQ8 plane enabled, logits gather from the quantized
// storage (a quarter of the key traffic); values are always mixed in
// fp32.
func (s *Session) prefixPartial(ds *decodeState, layer, kv int, q []float32, prefixIdx []int) attention.Partial {
	return s.prefixPartialIn(&ds.scPrefix, layer, kv, q, prefixIdx)
}

// prefixPartialIn is prefixPartial through an explicit scratch arena — the
// form the per-shard fan-out uses, one arena per shard partial.
func (s *Session) prefixPartialIn(sc *attention.Scratch, layer, kv int, q []float32, idx []int) attention.Partial {
	if qk := s.root.cache.QuantKeys(layer, kv); qk != nil {
		return attention.OverQ8Scratch(sc, q, qk, s.root.cache.Values(layer, kv), idx)
	}
	return attention.OverScratch(sc, q, s.root.cache.Keys(layer, kv), s.root.cache.Values(layer, kv), idx)
}

// coarseIndex lazily builds (and device-registers) the coarse index for
// (layer, kvHead) over the reused context. Returns false if the device
// cannot hold the working set.
func (s *Session) coarseIndex(layer, kv int) (*coarse.Index, bool) {
	if s.root == nil {
		return nil, false
	}
	key := layer*s.db.cfg.Model.Config().KVHeads + kv
	s.mu.Lock()
	defer s.mu.Unlock()
	if ix, ok := s.coarseIx[key]; ok {
		return ix, ix != nil
	}
	ix := coarse.New(s.root.cache.Keys(layer, kv), 128, coarse.Mean)
	mc := s.db.cfg.Model.Config()
	need := ix.RepresentativeBytes() + int64(s.db.cfg.CoarseBudget)*int64(mc.HeadDim)*4*2
	h, err := s.db.cfg.Device.Alloc(need, devmem.BlockCache)
	if err != nil {
		s.coarseIx[key] = nil // remember the failure
		return nil, false
	}
	s.coarseIx[key] = ix
	s.coarseH[key] = h
	return ix, true
}

// materialize produces a cold session's full document and KV cache for
// DB.Store's late-materialization path. Sessions with a reused base take
// the copy-on-write path in Store instead of copying prefix rows here.
func (s *Session) materialize() (*model.Document, *kvcache.Cache, error) {
	if s.base != nil {
		return nil, nil, fmt.Errorf("core: materialize on a session with a reused base; Store shares it copy-on-write")
	}
	mc := s.db.cfg.Model.Config()
	out := kvcache.New(mc.Layers, mc.KVHeads, mc.HeadDim)
	for l := 0; l < mc.Layers; l++ {
		if got := s.ContextLen(l); got != s.doc.Len() {
			return nil, nil, fmt.Errorf("core: layer %d holds %d of %d tokens; prefill before storing", l, got, s.doc.Len())
		}
		for h := 0; h < mc.KVHeads; h++ {
			tk, tv := s.tail.Keys(l, h), s.tail.Values(l, h)
			for i := 0; i < tk.Rows(); i++ {
				out.Append(l, h, tk.Row(i), tv.Row(i))
			}
		}
	}
	doc := &model.Document{Seed: s.doc.Seed, Tokens: append([]model.Token(nil), s.doc.Tokens...)}
	return doc, out, nil
}

// Close releases the session's device registrations and its eviction pin
// on the base chain. Double closes are rejected.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: session already closed")
	}
	s.closed = true
	if s.basePinned {
		s.db.mu.Lock()
		s.db.unpinChainLocked(s.base)
		s.db.mu.Unlock()
		s.basePinned = false
	}
	if s.windowH >= 0 {
		if err := s.db.cfg.Device.Free(s.windowH); err != nil {
			return err
		}
	}
	for _, h := range s.coarseH {
		if err := s.db.cfg.Device.Free(h); err != nil {
			return err
		}
	}
	return nil
}
