package core

import (
	"math"
	"testing"

	"repro/internal/attention"
	"repro/internal/devmem"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/vec"
)

func testModel() *model.Model {
	cfg := model.Default()
	cfg.Layers = 2
	cfg.QHeads = 4
	cfg.KVHeads = 2
	cfg.HeadDim = 128
	cfg.Vocab = 32
	return model.New(cfg)
}

func testDB(t *testing.T, dev *devmem.Device) *DB {
	t.Helper()
	db, err := New(Config{
		Model:         testModel(),
		Device:        dev,
		Window:        attention.Window{Sinks: 4, Recent: 16},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestNewRequiresModel(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("DB created without model")
	}
}

func TestWeightsRegisteredOnDevice(t *testing.T) {
	dev := devmem.New(0)
	db := testDB(t, dev)
	if got := dev.UsedBy(devmem.Weights); got != db.Model().WeightsBytes() {
		t.Errorf("weights on device = %d, want %d", got, db.Model().WeightsBytes())
	}
}

func TestImportAndFullReuse(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(1, 600, 8, 32)
	ctx, err := db.ImportDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Len() != 600 || db.NumContexts() != 1 {
		t.Fatalf("ctx len %d, contexts %d", ctx.Len(), db.NumContexts())
	}
	if ctx.IndexBytes() <= 0 {
		t.Error("no index built on import")
	}

	sess, reused := db.CreateSession(doc)
	defer sess.Close()
	if reused != 600 {
		t.Fatalf("reused = %d, want 600", reused)
	}
	if sess.PartialReuse() {
		t.Error("full reuse flagged as partial")
	}
}

func TestImportLengthMismatch(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(1, 100, 8, 32)
	short := db.Model().BuildKV(doc.Slice(50))
	if _, err := db.Import(doc, short); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPartialReuseDetection(t *testing.T) {
	db := testDB(t, nil)
	stored := model.NewFiller(2, 500, 8, 32)
	if _, err := db.ImportDoc(stored); err != nil {
		t.Fatal(err)
	}
	// New doc: same first 300 tokens, then diverges.
	newDoc := &model.Document{Seed: stored.Seed, Tokens: append([]model.Token(nil), stored.Tokens[:300]...)}
	newDoc.Append(model.Token{Topic: 100, Payload: 1})
	sess, reused := db.CreateSession(newDoc)
	defer sess.Close()
	if reused != 300 {
		t.Fatalf("reused = %d, want 300", reused)
	}
	if !sess.PartialReuse() {
		t.Error("partial reuse not flagged")
	}
}

func TestNoReuseAcrossSeeds(t *testing.T) {
	db := testDB(t, nil)
	stored := model.NewFiller(3, 200, 8, 32)
	if _, err := db.ImportDoc(stored); err != nil {
		t.Fatal(err)
	}
	other := model.NewFiller(4, 200, 8, 32)
	sess, reused := db.CreateSession(other)
	defer sess.Close()
	if reused != 0 {
		t.Errorf("reused = %d across different seeds", reused)
	}
}

func TestPrefillAndUpdate(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(5, 100, 8, 32)
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	fed := sess.PrefillRemaining()
	if fed != 100 {
		t.Fatalf("prefilled %d tokens", fed)
	}
	if sess.ContextLen(0) != 100 || sess.ContextLen(1) != 100 {
		t.Errorf("context lens = %d/%d", sess.ContextLen(0), sess.ContextLen(1))
	}
	sess.AppendToken(model.Token{Topic: 1, Payload: 2})
	if sess.ContextLen(0) != 101 {
		t.Errorf("len after append = %d", sess.ContextLen(0))
	}
}

// TestShortContextFullAttentionMatchesReference: on a short context the
// optimizer picks full attention and the session output must equal direct
// full attention over the substrate's KV.
func TestShortContextFullAttentionMatchesReference(t *testing.T) {
	db := testDB(t, nil)
	m := db.Model()
	doc := model.NewFiller(6, 120, 8, 32)
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	sess.PrefillRemaining()

	cache := m.BuildKV(doc)
	for _, qh := range []int{0, 3} {
		q := m.QueryVector(doc, 1, qh, model.QuerySpec{FocusTopics: []int{2}, ContextLen: 120})
		res := sess.Attention(1, qh, q)
		if res.Plan.Query != query.KindFull {
			t.Fatalf("plan = %v, want full", res.Plan)
		}
		kv := m.KVGroup(qh)
		want := attention.Full(q, cache.Keys(1, kv), cache.Values(1, kv))
		for i := range want {
			if math.Abs(float64(res.Output[i]-want[i])) > 1e-4 {
				t.Fatalf("head %d output[%d] = %v, want %v", qh, i, res.Output[i], want[i])
			}
		}
		if res.Attended != 120 {
			t.Errorf("attended = %d, want 120", res.Attended)
		}
	}
}

// TestLongContextDIPRFindsNeedle: end-to-end sparse path. A needle planted
// mid-context must be retrieved and dominate the output of a sharp head.
func TestLongContextDIPRFindsNeedle(t *testing.T) {
	dev := devmem.New(24 << 20) // fits weights+window but not the coarse block cache
	mdl := testModel()
	db, err := New(Config{
		Model:         mdl,
		Device:        dev,
		Window:        attention.Window{Sinks: 4, Recent: 16},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       2,
	})
	if err != nil {
		// Tight device may not even fit weights; widen.
		t.Fatal(err)
	}
	defer db.Close()

	const n, needlePos, questionTopic, answer = 800, 400, 100, 7
	doc := model.NewFiller(7, n, 64, 32)
	doc.Plant(needlePos, questionTopic, answer, 1)
	if _, err := db.ImportDoc(doc); err != nil {
		t.Fatal(err)
	}
	sess, reused := db.CreateSession(doc)
	defer sess.Close()
	if reused != n {
		t.Fatalf("reused = %d", reused)
	}

	// Sharp head of layer 1 (layer 0 heads are diffuse by construction).
	qh := 0 // head 0 of layer >= 1 is pinned sharp
	q := mdl.QueryVector(doc, 1, qh, model.QuerySpec{FocusTopics: []int{questionTopic}, ContextLen: n})
	res := sess.Attention(1, qh, q)
	if res.Plan.Query != query.KindDIPR || res.Plan.Index != query.IndexFine {
		t.Fatalf("plan = %v, want dipr+fine", res.Plan)
	}
	if res.Retrieved == 0 {
		t.Fatal("nothing retrieved")
	}
	// The needle must be in the retrieved set.
	found := false
	for _, id := range res.RetrievedIDs {
		if id == needlePos {
			found = true
		}
	}
	if !found {
		t.Fatalf("needle %d not retrieved: %v", needlePos, res.RetrievedIDs)
	}
	// The sparse output must approximate full attention far better than a
	// window-only (StreamingLLM-style) baseline that drops the needle.
	cache := mdl.BuildKV(doc)
	kv := mdl.KVGroup(qh)
	want := attention.Full(q, cache.Keys(1, kv), cache.Values(1, kv))
	simSparse := vec.CosineSimilarity(res.Output, want)
	winOnly := attention.Sparse(q, cache.Keys(1, kv), cache.Values(1, kv), db.Window().Indices(n))
	simWindow := vec.CosineSimilarity(winOnly, want)
	if simSparse < 0.75 {
		t.Errorf("sparse output cos sim to full = %v, want >= 0.75", simSparse)
	}
	if simSparse <= simWindow {
		t.Errorf("sparse (%v) does not beat window-only (%v)", simSparse, simWindow)
	}
}

func TestLayerZeroUsesFlatPlan(t *testing.T) {
	dev := devmem.New(24 << 20)
	mdl := testModel()
	db, err := New(Config{
		Model: mdl, Device: dev,
		Window:        attention.Window{Sinks: 4, Recent: 16},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := model.NewFiller(8, 400, 8, 32)
	if _, err := db.ImportDoc(doc); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	q := mdl.QueryVector(doc, 0, 0, model.QuerySpec{FocusTopics: []int{1}, ContextLen: 400})
	res := sess.Attention(0, 0, q)
	if res.Plan.Index != query.IndexFlat {
		t.Errorf("layer-0 plan = %v, want dipr+flat", res.Plan)
	}
}

func TestAmpleDeviceSelectsCoarse(t *testing.T) {
	db := testDB(t, nil) // unlimited device
	doc := model.NewFiller(9, 500, 8, 32)
	if _, err := db.ImportDoc(doc); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	mdl := db.Model()
	q := mdl.QueryVector(doc, 1, 0, model.QuerySpec{FocusTopics: []int{1}, ContextLen: 500})
	res := sess.Attention(1, 0, q)
	if res.Plan.Query != query.KindTopK || res.Plan.Index != query.IndexCoarse {
		t.Fatalf("plan = %v, want topk+coarse", res.Plan)
	}
	if res.Retrieved == 0 {
		t.Error("coarse retrieved nothing")
	}
	if db.Device().UsedBy(devmem.BlockCache) == 0 {
		t.Error("coarse path did not register device memory")
	}
}

func TestPartialReuseFiltersRetrieval(t *testing.T) {
	dev := devmem.New(24 << 20)
	mdl := testModel()
	db, err := New(Config{
		Model: mdl, Device: dev,
		Window:        attention.Window{Sinks: 4, Recent: 16},
		LongThreshold: 256,
		Graph:         graph.Config{Degree: 12, QueryKNN: 8, EfConstruction: 48},
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	stored := model.NewFiller(10, 600, 8, 32)
	if _, err := db.ImportDoc(stored); err != nil {
		t.Fatal(err)
	}
	partial := &model.Document{Seed: stored.Seed, Tokens: append([]model.Token(nil), stored.Tokens[:400]...)}
	partial.Append(model.Token{Topic: 50, Payload: 3})
	sess, reused := db.CreateSession(partial)
	defer sess.Close()
	if reused != 400 {
		t.Fatalf("reused = %d", reused)
	}
	sess.PrefillRemaining()

	q := mdl.QueryVector(partial, 1, 0, model.QuerySpec{FocusTopics: []int{2}, ContextLen: 401})
	res := sess.Attention(1, 0, q)
	if !res.Plan.Filtered {
		t.Fatalf("plan = %v, want filtered", res.Plan)
	}
	// All attended tokens besides window/tail must be below the reuse
	// boundary; Attended counts prefix + tail.
	if res.Attended > 400+1 {
		t.Errorf("attended %d tokens, must not exceed reuse boundary + tail", res.Attended)
	}
}

func TestStoreAndReuseStored(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(11, 150, 8, 32)
	sess, _ := db.CreateSession(doc)
	sess.PrefillRemaining()
	sess.AppendToken(model.Token{Topic: 3, Payload: 4})

	ctx, err := db.Store(sess)
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if ctx.Len() != 151 {
		t.Fatalf("stored len = %d", ctx.Len())
	}
	// The stored KV must match the substrate's reference build.
	ref := db.Model().BuildKV(ctx.Doc())
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			a, b := ctx.Cache().Keys(l, h), ref.Keys(l, h)
			for i := 0; i < a.Rows(); i++ {
				for j := range a.Row(i) {
					if a.Row(i)[j] != b.Row(i)[j] {
						t.Fatalf("stored KV differs at layer %d head %d row %d", l, h, i)
					}
				}
			}
		}
	}
	// A new session over the stored doc reuses everything.
	sess2, reused := db.CreateSession(ctx.Doc())
	defer sess2.Close()
	if reused != 151 {
		t.Errorf("reuse of stored = %d", reused)
	}
}

func TestStoreBeforePrefillFails(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(12, 50, 8, 32)
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	if _, err := db.Store(sess); err == nil {
		t.Fatal("store of unprefilled session accepted")
	}
}

func TestSessionCloseFreesDevice(t *testing.T) {
	dev := devmem.New(0)
	db := testDB(t, dev)
	doc := model.NewFiller(13, 100, 8, 32)
	sess, _ := db.CreateSession(doc)
	if dev.UsedBy(devmem.Window) == 0 {
		t.Fatal("window not registered")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if dev.UsedBy(devmem.Window) != 0 {
		t.Error("window not freed on close")
	}
	if err := sess.Close(); err == nil {
		t.Error("double close accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(14, 100, 8, 32)
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	sess.PrefillRemaining()
	mdl := db.Model()
	q := mdl.QueryVector(doc, 0, 0, model.QuerySpec{FocusTopics: []int{1}, ContextLen: 100})
	sess.Attention(0, 0, q)
	sess.Attention(0, 1, q)
	st := sess.Stats()
	if st.Queries != 2 {
		t.Errorf("queries = %d", st.Queries)
	}
	if st.Plans["full+none"] != 2 {
		t.Errorf("plans = %v", st.Plans)
	}
}

func TestAttentionAll(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(15, 80, 8, 32)
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	sess.PrefillRemaining()
	mdl := db.Model()
	qs := make([][]float32, 4)
	for h := range qs {
		qs[h] = mdl.QueryVector(doc, 1, h, model.QuerySpec{FocusTopics: []int{1}, ContextLen: 80})
	}
	res := sess.AttentionAll(1, qs)
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for h, r := range res {
		if len(r.Output) != 128 {
			t.Errorf("head %d output dim = %d", h, len(r.Output))
		}
	}
}

func TestSessionDoesNotMutateCallerDocument(t *testing.T) {
	db := testDB(t, nil)
	doc := model.NewFiller(30, 60, 8, 32)
	wantLen := doc.Len()
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	sess.PrefillRemaining()
	sess.AppendToken(model.Token{Topic: 1, Payload: 1})
	if doc.Len() != wantLen {
		t.Fatalf("AppendToken mutated the caller's document: len %d -> %d", wantLen, doc.Len())
	}
	if sess.Doc().Len() != wantLen+1 {
		t.Fatalf("session doc len = %d, want %d", sess.Doc().Len(), wantLen+1)
	}
}

func TestAttentionOnEmptySession(t *testing.T) {
	db := testDB(t, nil)
	sess, reused := db.CreateSession(&model.Document{Seed: 123})
	defer sess.Close()
	if reused != 0 {
		t.Fatalf("reused = %d on empty doc", reused)
	}
	q := make([]float32, db.Model().Config().HeadDim)
	q[0] = 1
	res := sess.Attention(0, 0, q)
	// No tokens anywhere: output must be a zero vector, not NaN or panic.
	for i, v := range res.Output {
		if v != 0 {
			t.Fatalf("output[%d] = %v on empty context", i, v)
		}
	}
	if res.Attended != 0 {
		t.Errorf("attended = %d on empty context", res.Attended)
	}
}

func TestAttentionColdSessionNoStore(t *testing.T) {
	// A session with no stored context but a long prefilled tail must still
	// produce sane outputs (everything attends through the tail path).
	db := testDB(t, nil)
	doc := model.NewFiller(31, 400, 16, 32)
	sess, _ := db.CreateSession(doc)
	defer sess.Close()
	sess.PrefillRemaining()
	mdl := db.Model()
	q := mdl.QueryVector(doc, 1, 0, model.QuerySpec{FocusTopics: []int{3}, ContextLen: 400})
	res := sess.Attention(1, 0, q)
	if res.Attended != 400 {
		t.Errorf("attended = %d, want all 400 tail tokens", res.Attended)
	}
	cache := mdl.BuildKV(doc)
	kv := mdl.KVGroup(0)
	want := attention.Full(q, cache.Keys(1, kv), cache.Values(1, kv))
	for i := range want {
		if math.Abs(float64(res.Output[i]-want[i])) > 1e-4 {
			t.Fatalf("cold-session output differs from full attention at %d", i)
		}
	}
}
