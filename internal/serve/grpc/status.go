// Package grpc is the gRPC transport over the serve.Service core: the
// same engine-facing surface the HTTP transport exposes, as the
// alaya.v1.AlayaDB service (see pb/alaya.proto).
//
// The transport speaks the standard gRPC-over-HTTP/2 wire protocol —
// POST to /alaya.v1.AlayaDB/<Method>, application/grpc+proto bodies of
// 5-byte length-prefixed protobuf messages, grpc-status/grpc-message
// trailers — over cleartext HTTP/2 (h2c) using only net/http: Go 1.24's
// Protocols knob enables unencrypted HTTP/2 on both http.Server and
// http.Transport, so no third-party gRPC stack is needed and standard
// gRPC clients in any language can connect with plaintext credentials.
//
// Tensor payloads (attention, step, steps, step_stream) ride inside
// proto bytes fields using the exact application/x-alaya-frame encoding
// of the HTTP binary wire, which makes results across the two transports
// bit-identical by construction — the transport-conformance suite in
// internal/serve/conformance holds both to that.
//
// Errors cross the wire as the typed serve kinds, twice: mapped onto
// canonical gRPC status codes by the CodeForKind table (the analog of
// serve.HTTPStatus), and verbatim in an alaya-kind trailer, because the
// code mapping is lossy — KindTooLarge and KindOverloaded both map to
// ResourceExhausted. Clients that know the trailer recover the exact
// kind; plain gRPC clients still get the right canonical code.
package grpc

import (
	"fmt"

	"repro/internal/serve"
)

// Code is a canonical gRPC status code.
type Code uint32

// The canonical gRPC status codes (google.rpc.Code).
const (
	CodeOK                 Code = 0
	CodeCanceled           Code = 1
	CodeUnknown            Code = 2
	CodeInvalidArgument    Code = 3
	CodeDeadlineExceeded   Code = 4
	CodeNotFound           Code = 5
	CodeAlreadyExists      Code = 6
	CodePermissionDenied   Code = 7
	CodeResourceExhausted  Code = 8
	CodeFailedPrecondition Code = 9
	CodeAborted            Code = 10
	CodeOutOfRange         Code = 11
	CodeUnimplemented      Code = 12
	CodeInternal           Code = 13
	CodeUnavailable        Code = 14
	CodeDataLoss           Code = 15
	CodeUnauthenticated    Code = 16
)

var codeNames = map[Code]string{
	CodeOK: "OK", CodeCanceled: "Canceled", CodeUnknown: "Unknown",
	CodeInvalidArgument: "InvalidArgument", CodeDeadlineExceeded: "DeadlineExceeded",
	CodeNotFound: "NotFound", CodeAlreadyExists: "AlreadyExists",
	CodePermissionDenied: "PermissionDenied", CodeResourceExhausted: "ResourceExhausted",
	CodeFailedPrecondition: "FailedPrecondition", CodeAborted: "Aborted",
	CodeOutOfRange: "OutOfRange", CodeUnimplemented: "Unimplemented",
	CodeInternal: "Internal", CodeUnavailable: "Unavailable",
	CodeDataLoss: "DataLoss", CodeUnauthenticated: "Unauthenticated",
}

// String returns the canonical code name.
func (c Code) String() string {
	if n, ok := codeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Code(%d)", uint32(c))
}

// kindCode maps the typed serve error kinds onto canonical gRPC status
// codes — one table, mirroring serve.HTTPStatus. Two kinds collapse onto
// ResourceExhausted (gRPC has no distinct too-large/backpressure codes);
// the alaya-kind trailer preserves the exact kind across the wire.
var kindCode = map[serve.Kind]Code{
	serve.KindBadRequest:       CodeInvalidArgument,
	serve.KindNotFound:         CodeNotFound,
	serve.KindConflict:         CodeFailedPrecondition,
	serve.KindMethodNotAllowed: CodeUnimplemented,
	serve.KindTooLarge:         CodeResourceExhausted,
	serve.KindUnsupportedMedia: CodeInvalidArgument,
	serve.KindOverloaded:       CodeResourceExhausted,
	serve.KindUnavailable:      CodeUnavailable,
	serve.KindInternal:         CodeInternal,
}

// CodeForKind maps a typed error kind to its gRPC status code; unknown
// kinds are Internal, exactly as serve.HTTPStatus maps them to 500.
func CodeForKind(k serve.Kind) Code {
	if c, ok := kindCode[k]; ok {
		return c
	}
	return CodeInternal
}

// KindForCode recovers a serve kind from a bare status code — the
// fallback when a peer did not send the alaya-kind trailer. Lossy where
// the forward mapping collapses: ResourceExhausted reads as overloaded
// (the retryable interpretation).
func KindForCode(c Code) serve.Kind {
	switch c {
	case CodeInvalidArgument:
		return serve.KindBadRequest
	case CodeNotFound:
		return serve.KindNotFound
	case CodeFailedPrecondition:
		return serve.KindConflict
	case CodeUnimplemented:
		return serve.KindMethodNotAllowed
	case CodeResourceExhausted:
		return serve.KindOverloaded
	case CodeUnavailable:
		return serve.KindUnavailable
	}
	return serve.KindInternal
}

// StatusError is a non-OK gRPC status received by the client. Kind is
// the exact serve kind when the server sent the alaya-kind trailer, else
// KindForCode's reconstruction.
type StatusError struct {
	Code    Code
	Message string
	Kind    serve.Kind
}

func (e *StatusError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("rpc error: code = %s", e.Code)
	}
	return fmt.Sprintf("rpc error: code = %s desc = %s", e.Code, e.Message)
}

// statusFromError converts a service error into wire status parts.
func statusFromError(err error) (code Code, msg string, kind serve.Kind) {
	env := serve.Envelope(err)
	return CodeForKind(env.Kind), env.Error, env.Kind
}
