package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
)

// tinyScale keeps experiment smoke tests fast.
func tinyScale() Scale {
	cfg := model.Default()
	cfg.Layers = 2
	cfg.QHeads = 4
	cfg.KVHeads = 2
	cfg.Vocab = 32
	return Scale{
		ContextLen: 1024,
		Trials:     1,
		Workers:    2,
		Seed:       3,
		Model:      cfg,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "alloc", "batching", "cluster", "concurrent", "ctxpar", "fig10", "fig11", "fig12", "fig5", "fig6", "fig9", "prefix", "quant", "serving", "serving-grpc", "table3", "table4", "table5", "tiered", "window"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, got[i], want[i])
		}
	}
	for _, name := range got {
		if Describe(name) == "" {
			t.Errorf("experiment %s has no description", name)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("nope", Scale{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsRunAtTinyScale smoke-tests every runner end to end:
// each must complete and emit a non-trivial artefact.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests skipped in -short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(name, tinyScale(), &buf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := buf.String()
			if len(out) < 80 {
				t.Fatalf("%s produced almost no output:\n%s", name, out)
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("%s produced no table", name)
			}
		})
	}
}

// TestMeasureConcurrent checks the throughput probe itself: both locking
// modes must complete the same token budget and report a positive rate.
func TestMeasureConcurrent(t *testing.T) {
	s := tinyScale()
	s.ContextLen = 512
	for _, global := range []bool{true, false} {
		tps, err := MeasureConcurrent(s, ConcurrentOptions{Sessions: 2, StepsPerSession: 2, GlobalLock: global})
		if err != nil {
			t.Fatalf("global=%v: %v", global, err)
		}
		if tps <= 0 {
			t.Fatalf("global=%v: non-positive throughput %f", global, tps)
		}
	}
}

func TestScaledSLO(t *testing.T) {
	// Paper scale: floor (10ms) + 240ms.
	if got := ScaledSLO(131072); got.Milliseconds() != 250 {
		t.Errorf("SLO at paper scale = %v", got)
	}
	if got := ScaledSLO(1024); got < 10e6 { // >= 10ms floor
		t.Errorf("SLO floor violated: %v", got)
	}
	if ScaledSLO(8192) >= ScaledSLO(16384) {
		t.Error("SLO not monotone in context length")
	}
}

func TestScaleTo(t *testing.T) {
	if got := scaleTo(4096, 131072); got != 4096 {
		t.Errorf("scaleTo identity = %d", got)
	}
	if got := scaleTo(128, 1024); got != 4 {
		t.Errorf("scaleTo floor = %d", got)
	}
}

func TestContextLadder(t *testing.T) {
	got := contextLadder(4096)
	if len(got) != 3 || got[2] != 4096 {
		t.Errorf("contextLadder(4096) = %v", got)
	}
	if got := contextLadder(100); len(got) != 1 || got[0] != 100 {
		t.Errorf("contextLadder(100) = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &table{header: []string{"a", "long-column"}}
	tab.add("x", "y")
	tab.add("wide-cell", "z")
	var buf bytes.Buffer
	tab.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("no separator: %q", lines[1])
	}
}
