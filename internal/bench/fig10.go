package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/attention"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/devmem"
	"repro/internal/index/graph"
	"repro/internal/model"
	"repro/internal/workload"
)

func init() {
	register("fig10", "TTFT of context reuse: w/o reuse vs LMCache vs AlayaDB (Figure 10)", runFig10)
}

// runFig10 reproduces Figure 10: the time to first token over stored long
// contexts. Without reuse the engine pays the O(n²) prefill; LMCache-style
// disaggregation reloads (dequantize + transfer) the whole KV cache before
// decoding; AlayaDB decodes directly on the offloaded cache through its
// indexes, so its TTFT is nearly flat in context length.
func runFig10(s Scale, w io.Writer) error {
	m := model.New(s.Model)
	dev := devmem.New(0) // bandwidth model only
	lengths := contextLadder(s.ContextLen)

	fmt.Fprintf(w, "Figure 10(a): TTFT vs context length (%d trials)\n\n", s.Trials)
	t := &table{header: []string{"context", "w/o reuse", "LMCache", "AlayaDB", "speedup vs LMCache"}}

	type breakdown struct {
		n                int
		lmLoad, lmDecode time.Duration
		alLoad, alDecode time.Duration
	}
	var bds []breakdown

	for _, n := range lengths {
		p, _ := workload.ProfileByName("En.QA")
		inst := workload.Generate(p, s.Seed, n, 64, s.Model.Vocab)

		// Baseline 1: no reuse — full prefill (strided to keep wall clock
		// sane; the quadratic term is preserved and scaled back).
		prefill := &baselines.Prefill{Model: m, Stride: prefillStride(n)}
		tPrefill := prefill.TTFT(inst.Doc)

		// Baseline 2: LMCache-style disaggregation.
		lm := &baselines.LMCache{Model: m, Device: dev}
		lm.Store(inst.Doc)
		var lmTotal, lmLoad, lmDecode time.Duration
		for trial := 0; trial < s.Trials; trial++ {
			bd := lm.TTFT(inst.Doc, inst.Question[0])
			lmTotal += bd.Total
			lmLoad += bd.Load
			lmDecode += bd.Decode
		}
		lmTotal /= time.Duration(s.Trials)
		lmLoad /= time.Duration(s.Trials)
		lmDecode /= time.Duration(s.Trials)

		// AlayaDB: the context and its index are stored in advance (as in
		// the paper); TTFT is the first decode step on the offloaded cache.
		db, err := core.New(core.Config{
			Model:         m,
			Device:        devmem.New(0),
			Window:        attention.Window{Sinks: scaleTo(128, n) + 4, Recent: scaleTo(512, n)},
			LongThreshold: 256,
			Graph:         graph.Config{Degree: 16, QueryKNN: 12, EfConstruction: 64, Workers: s.Workers},
			Workers:       s.Workers,
			Beta:          betaFor(s.Model.HeadDim),
		})
		if err != nil {
			return err
		}
		if _, err := db.ImportDoc(inst.Doc); err != nil {
			return err
		}
		var alTotal, alDecode time.Duration
		for trial := 0; trial < s.Trials; trial++ {
			sess, reused := db.CreateSession(inst.Doc)
			if reused != n {
				return fmt.Errorf("fig10: reused %d of %d", reused, n)
			}
			start := time.Now()
			for l := 0; l < s.Model.Layers; l++ {
				for qh := 0; qh < s.Model.QHeads; qh++ {
					q := m.QueryVector(inst.Doc, l, qh, model.QuerySpec{
						FocusTopics: inst.Question, ContextLen: n})
					sess.Attention(l, qh, q)
				}
			}
			alTotal += time.Since(start)
			sess.Close()
		}
		alTotal /= time.Duration(s.Trials)
		alDecode = alTotal // AlayaDB has no load phase: decode is the whole TTFT
		db.Close()

		t.add(fmt.Sprintf("%d", n), fmtDur(tPrefill), fmtDur(lmTotal), fmtDur(alTotal),
			fmt.Sprintf("%.1fx", float64(lmTotal)/float64(alTotal)))
		bds = append(bds, breakdown{n: n, lmLoad: lmLoad, lmDecode: lmDecode, alLoad: 0, alDecode: alDecode})
	}
	t.write(w)

	fmt.Fprintf(w, "\nFigure 10(b): latency breakdown (load vs decode)\n\n")
	bt := &table{header: []string{"context", "system", "load", "decode"}}
	for _, bd := range []breakdown{bds[0], bds[len(bds)-1]} {
		bt.add(fmt.Sprintf("%d", bd.n), "LMCache", fmtDur(bd.lmLoad), fmtDur(bd.lmDecode))
		bt.add(fmt.Sprintf("%d", bd.n), "AlayaDB", fmtDur(bd.alLoad), fmtDur(bd.alDecode))
	}
	bt.write(w)
	fmt.Fprintln(w, "\npaper: AlayaDB 19-42x faster than LMCache (whose load grows linearly); 2-3 orders over no-reuse prefill")
	return nil
}

// contextLadder yields the sweep lengths up to the configured maximum.
func contextLadder(maxLen int) []int {
	ladder := []int{1024, 2048, 4096, 8192, 16384, 32768}
	var out []int
	for _, n := range ladder {
		if n <= maxLen {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{maxLen}
	}
	return out
}

// prefillStride keeps the strided prefill around a second of wall clock.
func prefillStride(n int) int {
	switch {
	case n <= 2048:
		return 4
	case n <= 8192:
		return 16
	default:
		return 64
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.0fus", float64(d.Nanoseconds())/1000)
	}
}
